#include "sim/simulator.hpp"

#include "sim/quantum_engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace abg::sim {

namespace {

struct JobState {
  std::unique_ptr<dag::Job> job;
  std::unique_ptr<sched::RequestPolicy> request;
  JobTrace trace;
  int desire = 1;
  int previous_allotment = 0;
  std::int64_t local_quantum = 0;
  bool active = false;
  bool done = false;
};

}  // namespace

SimResult simulate_job_set(std::vector<JobSubmission> submissions,
                           const sched::ExecutionPolicy& execution,
                           const sched::RequestPolicy& request_prototype,
                           alloc::Allocator& allocator,
                           const SimConfig& config) {
  if (config.processors < 1) {
    throw std::invalid_argument("simulate_job_set: processors must be >= 1");
  }
  if (config.quantum_length < 1) {
    throw std::invalid_argument(
        "simulate_job_set: quantum length must be >= 1");
  }
  allocator.reset();

  std::vector<JobState> states;
  states.reserve(submissions.size());
  dag::TaskCount total_work = 0;
  for (auto& sub : submissions) {
    if (!sub.job) {
      throw std::invalid_argument("simulate_job_set: null job");
    }
    if (sub.release_step < 0) {
      throw std::invalid_argument("simulate_job_set: negative release step");
    }
    JobState st;
    st.job = std::move(sub.job);
    st.request = request_prototype.clone();
    st.request->reset();
    st.trace.release_step = sub.release_step;
    st.trace.work = st.job->total_work();
    st.trace.critical_path = st.job->critical_path();
    total_work += st.trace.work;
    if (st.job->finished()) {  // zero-work job
      st.done = true;
      st.trace.completion_step = sub.release_step;
    }
    states.push_back(std::move(st));
  }

  dag::Steps latest_release = 0;
  for (const JobState& st : states) {
    latest_release = std::max(latest_release, st.trace.release_step);
  }
  const dag::Steps max_steps =
      config.max_steps > 0
          ? config.max_steps
          : latest_release + 8 * total_work + 64 * config.quantum_length;

  SimResult result;
  dag::Steps now = 0;
  std::vector<std::size_t> active_idx;
  std::vector<int> requests;
  std::size_t remaining =
      static_cast<std::size_t>(std::count_if(states.begin(), states.end(),
                                             [](const JobState& s) {
                                               return !s.done;
                                             }));

  const std::size_t max_active =
      config.max_active_jobs > 0
          ? static_cast<std::size_t>(config.max_active_jobs)
          : static_cast<std::size_t>(config.processors);

  while (remaining > 0) {
    // Admit jobs released by the current boundary, FCFS by release step
    // (ties by submission order), up to the admission cap.
    active_idx.clear();
    requests.clear();
    std::size_t active_count = 0;
    for (const JobState& st : states) {
      if (st.active) {
        ++active_count;
      }
    }
    // Candidates are scanned in submission order; releases were not
    // required to be sorted, so pick the earliest-released eligible job
    // until the cap fills.
    while (active_count < max_active) {
      std::size_t best = states.size();
      for (std::size_t i = 0; i < states.size(); ++i) {
        const JobState& st = states[i];
        if (st.done || st.active || st.trace.release_step > now) {
          continue;
        }
        if (best == states.size() ||
            st.trace.release_step < states[best].trace.release_step) {
          best = i;
        }
      }
      if (best == states.size()) {
        break;
      }
      states[best].active = true;
      states[best].desire = states[best].request->first_request();
      ++active_count;
    }
    // One request slot per submitted job, in stable submission order:
    // inactive (unreleased, queued, finished) jobs request 0.  Stable
    // positions let positional allocators (per-job weights) work across
    // job completions.
    requests.assign(states.size(), 0);
    for (std::size_t i = 0; i < states.size(); ++i) {
      JobState& st = states[i];
      if (st.active) {
        active_idx.push_back(i);
        requests[i] = st.desire;
      }
    }

    if (active_idx.empty()) {
      // All remaining jobs are released in the future: idle to the next
      // release boundary.
      dag::Steps next_release = max_steps;
      for (const JobState& st : states) {
        if (!st.done) {
          next_release = std::min(next_release, st.trace.release_step);
        }
      }
      const dag::Steps gap = next_release - now;
      const dag::Steps quanta_to_skip =
          std::max<dag::Steps>(1, gap / config.quantum_length);
      now += quanta_to_skip * config.quantum_length;
      if (now >= max_steps) {
        throw std::runtime_error("simulate_job_set: exceeded step bound");
      }
      continue;
    }

    ++result.quanta;
    const int pool = allocator.pool(config.processors);
    const std::vector<int> allotments =
        allocator.allocate(requests, config.processors);
    int assigned = 0;
    for (const int a : allotments) {
      assigned += a;
    }
    const int leftover = std::max(0, pool - assigned);

    for (const std::size_t i : active_idx) {
      JobState& st = states[i];
      const int allotment = allotments[i];
      ++st.local_quantum;
      const dag::Steps penalty = reallocation_penalty(
          st.previous_allotment, allotment,
          config.reallocation_cost_per_proc, config.quantum_length);
      st.previous_allotment = allotment;
      sched::QuantumStats stats;
      if (penalty < config.quantum_length) {
        stats = execution.run_quantum(*st.job, st.local_quantum, st.desire,
                                      allotment,
                                      config.quantum_length - penalty);
      } else {
        stats.index = st.local_quantum;
        stats.request = st.desire;
        stats.allotment = allotment;
        stats.finished = st.job->finished();
      }
      stats.length = config.quantum_length;
      stats.steps_used += penalty;
      if (penalty > 0) {
        stats.full = false;
      }
      stats.available = allotment + leftover;
      stats.start_step = now;
      st.trace.quanta.push_back(stats);
      if (stats.finished) {
        st.trace.completion_step = now + stats.steps_used;
        st.done = true;
        st.active = false;
        --remaining;
      } else {
        st.desire = st.request->next_request(stats);
      }
    }

    now += config.quantum_length;
    if (remaining > 0 && now >= max_steps) {
      throw std::runtime_error(
          "simulate_job_set: exceeded step bound; scheduling is not making "
          "progress");
    }
  }

  // Aggregate metrics.
  double response_sum = 0.0;
  for (JobState& st : states) {
    result.makespan = std::max(result.makespan, st.trace.completion_step);
    response_sum += static_cast<double>(st.trace.response_time());
    result.total_waste += st.trace.total_waste();
    result.jobs.push_back(std::move(st.trace));
  }
  result.mean_response_time =
      states.empty() ? 0.0
                     : response_sum / static_cast<double>(states.size());
  return result;
}

}  // namespace abg::sim
