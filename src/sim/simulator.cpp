#include "sim/simulator.hpp"

#include "fault/fault_injector.hpp"
#include "fault/faulty_allocator.hpp"
#include "sim/quantum_engine.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

namespace abg::sim {

namespace {

struct JobState {
  std::unique_ptr<dag::Job> job;
  std::unique_ptr<sched::RequestPolicy> request;
  JobTrace trace;
  int desire = 1;
  int previous_allotment = 0;
  std::int64_t local_quantum = 0;
  /// Step from which the job may be (re-)admitted: the release step, or
  /// after a crash the end of the crash quantum plus the restart delay.
  dag::Steps eligible_step = 0;
  /// A checkpoint-crashed job with preserved policy state resumes with
  /// its last desire instead of first_request() on re-admission.
  bool resumed = false;
  bool active = false;
  bool done = false;
};

}  // namespace

SimResult simulate_job_set(std::vector<JobSubmission> submissions,
                           const sched::ExecutionPolicy& execution,
                           const sched::RequestPolicy& request_prototype,
                           alloc::Allocator& allocator,
                           const SimConfig& config) {
  if (config.processors < 1) {
    throw std::invalid_argument("simulate_job_set: processors must be >= 1");
  }
  if (config.quantum_length < 1) {
    throw std::invalid_argument(
        "simulate_job_set: quantum length must be >= 1");
  }
  allocator.reset();

  // Fault machinery only exists when a non-empty plan is attached; the
  // fault-free path below is byte-identical to a run without the plan.
  const bool faulty = config.faults != nullptr && !config.faults->empty();
  std::optional<fault::FaultInjector> injector;
  std::optional<fault::FaultyAllocator> faulty_allocator;
  if (faulty) {
    injector.emplace(*config.faults);
    faulty_allocator.emplace(allocator, *injector);
  }
  alloc::Allocator& machine =
      faulty ? static_cast<alloc::Allocator&>(*faulty_allocator)
             : allocator;

  std::vector<JobState> states;
  states.reserve(submissions.size());
  dag::TaskCount total_work = 0;
  for (auto& sub : submissions) {
    if (!sub.job) {
      throw std::invalid_argument("simulate_job_set: null job");
    }
    if (sub.release_step < 0) {
      throw std::invalid_argument("simulate_job_set: negative release step");
    }
    JobState st;
    st.job = std::move(sub.job);
    st.request = request_prototype.clone();
    st.request->reset();
    st.trace.release_step = sub.release_step;
    st.eligible_step = sub.release_step;
    st.trace.work = st.job->total_work();
    st.trace.critical_path = st.job->critical_path();
    total_work += st.trace.work;
    if (st.job->finished()) {  // zero-work job
      st.done = true;
      st.trace.completion_step = sub.release_step;
    }
    states.push_back(std::move(st));
  }

  dag::Steps latest_release = 0;
  for (const JobState& st : states) {
    latest_release = std::max(latest_release, st.trace.release_step);
  }
  dag::Steps max_steps =
      config.max_steps > 0
          ? config.max_steps
          : latest_release + 8 * total_work + 64 * config.quantum_length;
  if (faulty && config.max_steps == 0) {
    // Crashes redo work and outages stall progress: widen the safety
    // bound by the work each crash can force to be repeated, a window per
    // event, and the plan's own horizon.
    const auto crashes =
        static_cast<dag::Steps>(config.faults->crash_count());
    const auto events =
        static_cast<dag::Steps>(config.faults->events.size());
    max_steps += config.faults->last_event_step() +
                 config.faults->restart_delay * crashes +
                 8 * total_work * crashes +
                 64 * config.quantum_length * events;
  }

  SimResult result;
  if (faulty) {
    result.fault_log.enabled = true;
    result.fault_log.min_capacity = config.processors;
  }
  fault::FaultLog& log = result.fault_log;
  dag::Steps now = 0;
  std::vector<std::size_t> active_idx;
  std::vector<int> requests;
  std::size_t remaining =
      static_cast<std::size_t>(std::count_if(states.begin(), states.end(),
                                             [](const JobState& s) {
                                               return !s.done;
                                             }));

  const std::size_t max_active =
      config.max_active_jobs > 0
          ? static_cast<std::size_t>(config.max_active_jobs)
          : static_cast<std::size_t>(config.processors);

  while (remaining > 0) {
    // Consume fault events for the quantum [now, now + L).  Events inside
    // windows skipped by the idle fast-path below are consumed lazily on
    // the next boundary; failures/repairs net out and crashes of
    // non-running jobs are no-ops, so laziness is sound.
    fault::WindowFaults window;
    if (faulty) {
      window = injector->advance(now, now + config.quantum_length);
      for (const fault::FaultEvent& e : window.applied) {
        log.disturbance_steps.push_back(e.step);
        switch (e.kind) {
          case fault::FaultKind::kProcessorFailure:
            ++log.failure_events;
            break;
          case fault::FaultKind::kProcessorRepair:
            ++log.repair_events;
            break;
          case fault::FaultKind::kAllotmentRevocation:
            ++log.revocation_events;
            break;
          case fault::FaultKind::kJobCrash:
            break;  // counted via log.crashes when applied
        }
      }
      log.min_capacity =
          std::min(log.min_capacity, injector->capacity(config.processors));
    }

    // Admit jobs eligible by the current boundary, FCFS by eligible step
    // (ties by submission order), up to the admission cap.
    active_idx.clear();
    requests.clear();
    std::size_t active_count = 0;
    for (const JobState& st : states) {
      if (st.active) {
        ++active_count;
      }
    }
    // Candidates are scanned in submission order; releases were not
    // required to be sorted, so pick the earliest-eligible job until the
    // cap fills.
    while (active_count < max_active) {
      std::size_t best = states.size();
      for (std::size_t i = 0; i < states.size(); ++i) {
        const JobState& st = states[i];
        if (st.done || st.active || st.eligible_step > now) {
          continue;
        }
        if (best == states.size() ||
            st.eligible_step < states[best].eligible_step) {
          best = i;
        }
      }
      if (best == states.size()) {
        break;
      }
      JobState& st = states[best];
      st.active = true;
      if (st.resumed) {
        st.resumed = false;  // keep the preserved desire
      } else {
        st.desire = st.request->first_request();
      }
      ++active_count;
    }
    // One request slot per submitted job, in stable submission order:
    // inactive (unreleased, queued, finished) jobs request 0.  Stable
    // positions let positional allocators (per-job weights) work across
    // job completions.
    requests.assign(states.size(), 0);
    for (std::size_t i = 0; i < states.size(); ++i) {
      JobState& st = states[i];
      if (st.active) {
        active_idx.push_back(i);
        requests[i] = st.desire;
      }
    }

    if (active_idx.empty()) {
      // All remaining jobs are eligible in the future: idle to the next
      // eligibility boundary.
      dag::Steps next_release = max_steps;
      for (const JobState& st : states) {
        if (!st.done) {
          next_release = std::min(next_release, st.eligible_step);
        }
      }
      const dag::Steps gap = next_release - now;
      const dag::Steps quanta_to_skip =
          std::max<dag::Steps>(1, gap / config.quantum_length);
      now += quanta_to_skip * config.quantum_length;
      if (now >= max_steps) {
        throw std::runtime_error("simulate_job_set: exceeded step bound");
      }
      continue;
    }

    ++result.quanta;
    const int pool = machine.pool(config.processors);
    const std::vector<int> allotments =
        machine.allocate(requests, config.processors);
    int assigned = 0;
    for (const int a : allotments) {
      assigned += a;
    }
    // Revoked processors are held by the revoker, not idle: exclude them
    // from the leftover availability reported to jobs.
    const int revoked = faulty ? faulty_allocator->last_revoked() : 0;
    const int leftover = std::max(0, pool - assigned - revoked);

    // Which active jobs crash during this quantum.
    std::vector<std::size_t> crash_victims;
    if (faulty) {
      for (const fault::FaultEvent& e : window.crashes) {
        const auto j = static_cast<std::size_t>(e.job);
        if (j < states.size() && states[j].active &&
            std::find(crash_victims.begin(), crash_victims.end(), j) ==
                crash_victims.end()) {
          crash_victims.push_back(j);
        }
      }
    }

    for (const std::size_t i : active_idx) {
      JobState& st = states[i];
      const int allotment = allotments[i];
      if (faulty) {
        log.allotted_cycles +=
            static_cast<dag::TaskCount>(allotment) *
            static_cast<dag::TaskCount>(config.quantum_length);
      }
      const bool crashed =
          faulty && std::find(crash_victims.begin(), crash_victims.end(),
                              i) != crash_victims.end();
      if (crashed) {
        // The job held its allotment when the crash hit: the whole
        // quantum is forfeited.  Under checkpoint recovery the voided
        // quantum stays in the trace as pure waste; under
        // restart-from-scratch the entire trace so far is discarded and
        // the job restarts as a fresh DAG.
        ++st.local_quantum;
        sched::QuantumStats stats;
        stats.index = st.local_quantum;
        stats.start_step = now;
        stats.request = st.desire;
        stats.allotment = allotment;
        stats.available = allotment + leftover;
        stats.length = config.quantum_length;
        st.trace.quanta.push_back(stats);
        fault::CrashRecord record;
        record.job = i;
        record.step = now;
        if (config.faults->work_loss == fault::WorkLoss::kRestartFromScratch) {
          record.lost_work = st.job->completed_work();
          record.discarded_cycles = st.trace.total_allotted();
          st.job = st.job->fresh_clone();
          st.trace.quanta.clear();
          st.local_quantum = 0;
        }
        if (config.faults->policy_on_restart ==
            fault::PolicyOnRestart::kReset) {
          st.request->reset();
          st.desire = st.request->first_request();
        } else {
          st.resumed = true;  // re-admission keeps the preserved desire
        }
        log.crashes.push_back(record);
        log.lost_work += record.lost_work;
        log.discarded_cycles += record.discarded_cycles;
        st.previous_allotment = 0;
        st.active = false;
        st.eligible_step =
            now + config.quantum_length + config.faults->restart_delay;
        continue;
      }
      ++st.local_quantum;
      const dag::Steps penalty = reallocation_penalty(
          st.previous_allotment, allotment,
          config.reallocation_cost_per_proc, config.quantum_length);
      st.previous_allotment = allotment;
      sched::QuantumStats stats;
      if (penalty < config.quantum_length) {
        stats = execution.run_quantum(*st.job, st.local_quantum, st.desire,
                                      allotment,
                                      config.quantum_length - penalty);
      } else {
        stats.index = st.local_quantum;
        stats.request = st.desire;
        stats.allotment = allotment;
        stats.finished = st.job->finished();
      }
      stats.length = config.quantum_length;
      stats.steps_used += penalty;
      if (penalty > 0) {
        stats.full = false;
      }
      stats.available = allotment + leftover;
      stats.start_step = now;
      st.trace.quanta.push_back(stats);
      if (stats.finished) {
        st.trace.completion_step = now + stats.steps_used;
        st.done = true;
        st.active = false;
        --remaining;
      } else {
        st.desire = st.request->next_request(stats);
      }
    }

    now += config.quantum_length;
    if (remaining > 0 && now >= max_steps) {
      throw std::runtime_error(
          "simulate_job_set: exceeded step bound; scheduling is not making "
          "progress");
    }
  }

  // Aggregate metrics.
  double response_sum = 0.0;
  for (JobState& st : states) {
    result.makespan = std::max(result.makespan, st.trace.completion_step);
    response_sum += static_cast<double>(st.trace.response_time());
    result.total_waste += st.trace.total_waste();
    result.jobs.push_back(std::move(st.trace));
  }
  result.mean_response_time =
      states.empty() ? 0.0
                     : response_sum / static_cast<double>(states.size());
  return result;
}

}  // namespace abg::sim
