#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abg::fault {

namespace {

void validate_event(const FaultEvent& e) {
  if (e.step < 0) {
    throw std::invalid_argument("FaultPlan: event with negative step");
  }
  switch (e.kind) {
    case FaultKind::kProcessorFailure:
    case FaultKind::kProcessorRepair:
      if (e.processors < 1) {
        throw std::invalid_argument(
            "FaultPlan: failure/repair must affect >= 1 processor");
      }
      break;
    case FaultKind::kJobCrash:
      if (e.job < 0) {
        throw std::invalid_argument("FaultPlan: crash without a job target");
      }
      break;
    case FaultKind::kAllotmentRevocation:
      if (e.job < 0) {
        throw std::invalid_argument(
            "FaultPlan: revocation without a job target");
      }
      if (e.cap < 0) {
        throw std::invalid_argument("FaultPlan: negative revocation cap");
      }
      if (e.duration < 0) {
        throw std::invalid_argument(
            "FaultPlan: negative revocation duration");
      }
      break;
  }
}

}  // namespace

void FaultPlan::normalize() {
  for (const FaultEvent& e : events) {
    validate_event(e);
  }
  if (restart_delay < 0) {
    throw std::invalid_argument("FaultPlan: negative restart delay");
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.step < b.step;
                   });
}

dag::Steps FaultPlan::last_event_step() const {
  dag::Steps last = 0;
  for (const FaultEvent& e : events) {
    last = std::max(last, e.step + std::max<dag::Steps>(e.duration, 0));
  }
  return last;
}

std::size_t FaultPlan::crash_count() const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(), [](const FaultEvent& e) {
        return e.kind == FaultKind::kJobCrash;
      }));
}

FaultPlan step_failure_plan(dag::Steps step, int processors) {
  FaultPlan plan;
  plan.events.push_back(
      FaultEvent{step, FaultKind::kProcessorFailure, processors});
  plan.normalize();
  return plan;
}

FaultPlan impulse_failure_plan(dag::Steps step, int processors,
                               dag::Steps outage) {
  if (outage < 1) {
    throw std::invalid_argument(
        "impulse_failure_plan: outage must be >= 1 step");
  }
  FaultPlan plan;
  plan.events.push_back(
      FaultEvent{step, FaultKind::kProcessorFailure, processors});
  plan.events.push_back(
      FaultEvent{step + outage, FaultKind::kProcessorRepair, processors});
  plan.normalize();
  return plan;
}

FaultPlan poisson_churn_plan(util::Rng& rng, dag::Steps horizon,
                             double failure_rate, dag::Steps mean_outage,
                             int max_down) {
  if (horizon < 1 || failure_rate <= 0.0 || mean_outage < 1 ||
      max_down < 1) {
    throw std::invalid_argument("poisson_churn_plan: invalid parameters");
  }
  FaultPlan plan;
  // Exponential inter-arrival times give the Poisson process; exponential
  // outages give memoryless repairs.  Repairs are scheduled immediately so
  // the concurrent-failure count is known at draw time.
  std::vector<dag::Steps> repair_steps;  // pending repairs, any order
  double t = 0.0;
  while (true) {
    t += -std::log(1.0 - rng.uniform01()) / failure_rate;
    const auto step = static_cast<dag::Steps>(t);
    if (step >= horizon) {
      break;
    }
    std::erase_if(repair_steps,
                  [step](dag::Steps r) { return r <= step; });
    if (static_cast<int>(repair_steps.size()) >= max_down) {
      continue;  // churn cap reached; drop this failure
    }
    const auto outage = std::max<dag::Steps>(
        1, static_cast<dag::Steps>(
               -std::log(1.0 - rng.uniform01()) *
               static_cast<double>(mean_outage)));
    plan.events.push_back(
        FaultEvent{step, FaultKind::kProcessorFailure, 1});
    plan.events.push_back(
        FaultEvent{step + outage, FaultKind::kProcessorRepair, 1});
    repair_steps.push_back(step + outage);
  }
  plan.normalize();
  return plan;
}

FaultPlan periodic_crash_plan(int job, dag::Steps first_step,
                              dag::Steps period, int count) {
  if (period < 1 || count < 1) {
    throw std::invalid_argument("periodic_crash_plan: invalid parameters");
  }
  FaultPlan plan;
  for (int i = 0; i < count; ++i) {
    FaultEvent e;
    e.step = first_step + static_cast<dag::Steps>(i) * period;
    e.kind = FaultKind::kJobCrash;
    e.job = job;
    plan.events.push_back(e);
  }
  plan.normalize();
  return plan;
}

}  // namespace abg::fault
