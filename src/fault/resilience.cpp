#include "fault/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace abg::fault {

namespace {

/// Aggregate per-global-quantum request signal Σ_j d_j(q), indexed by
/// slot = start_step / L.  Empty when the result's quanta are not
/// uniform-length and boundary-aligned (async engine).
std::vector<double> aggregate_request_series(const sim::SimResult& result,
                                             dag::Steps* length_out) {
  dag::Steps length = 0;
  for (const sim::JobTrace& t : result.jobs) {
    for (const auto& q : t.quanta) {
      if (length == 0) {
        length = q.length;
      }
      if (q.length != length || length == 0 ||
          q.start_step % length != 0) {
        return {};
      }
    }
  }
  *length_out = length;
  if (length == 0) {
    return {};
  }
  std::vector<double> series;
  for (const sim::JobTrace& t : result.jobs) {
    for (const auto& q : t.quanta) {
      const auto slot = static_cast<std::size_t>(q.start_step / length);
      if (slot >= series.size()) {
        series.resize(slot + 1, 0.0);
      }
      series[slot] += static_cast<double>(q.request);
    }
  }
  return series;
}

DisturbanceResponse analyze_window(const std::vector<double>& series,
                                   std::size_t slot, std::size_t wend,
                                   dag::Steps step, double tolerance) {
  DisturbanceResponse resp;
  resp.step = step;
  const double settled = series[wend];
  const double band = std::max(1.0, tolerance * std::fabs(settled));
  // Walk backwards from the window end: the signal is "recovered" from
  // the first index after which it never leaves the settled band again.
  std::size_t recovered_from = slot;
  for (std::size_t k = wend + 1; k-- > slot;) {
    if (std::fabs(series[k] - settled) > band) {
      recovered_from = k + 1;
      break;
    }
    if (k == slot) {
      recovered_from = slot;
    }
  }
  if (recovered_from > wend) {
    resp.recovery_quanta = -1;  // never re-entered the band
  } else {
    resp.recovery_quanta =
        static_cast<std::int64_t>(recovered_from - slot);
  }
  double peak = 0.0;
  for (std::size_t k = slot; k <= wend; ++k) {
    peak = std::max(peak, series[k] - settled);
  }
  resp.overshoot = peak;
  return resp;
}

}  // namespace

ResilienceReport analyze_resilience(const sim::SimResult& faulty,
                                    const sim::SimResult& reference,
                                    double settle_tolerance) {
  const FaultLog& log = faulty.fault_log;
  ResilienceReport report;
  dag::TaskCount trace_allotted = 0;
  for (const sim::JobTrace& t : faulty.jobs) {
    for (const auto& q : t.quanta) {
      report.work_done += q.work;
    }
    trace_allotted += t.total_allotted();
  }
  report.lost_work = log.lost_work;
  report.allotted_cycles =
      log.enabled ? log.allotted_cycles
                  : trace_allotted;  // fault-free run: nothing discarded
  report.waste =
      faulty.total_waste + (log.discarded_cycles - log.lost_work);
  report.makespan = faulty.makespan;
  report.reference_makespan = reference.makespan;
  report.makespan_degradation =
      reference.makespan > 0
          ? static_cast<double>(faulty.makespan) /
                static_cast<double>(reference.makespan)
          : 0.0;
  report.failure_events = log.failure_events;
  report.repair_events = log.repair_events;
  report.revocation_events = log.revocation_events;
  report.crash_events = log.crashes.size();
  report.min_capacity = log.min_capacity;

  dag::Steps length = 0;
  const std::vector<double> series =
      faulty.averaged_allotments
          ? std::vector<double>{}
          : aggregate_request_series(faulty, &length);
  if (!series.empty() && length > 0) {
    // Distinct disturbed slots in time order; each response window runs
    // to the quantum before the next disturbance (or the series end).
    std::vector<std::size_t> slots;
    for (const dag::Steps step : log.disturbance_steps) {
      const auto slot = static_cast<std::size_t>(step / length);
      if (slot < series.size() &&
          (slots.empty() || slot > slots.back())) {
        slots.push_back(slot);
      }
    }
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const std::size_t wend = i + 1 < slots.size()
                                   ? slots[i + 1] - 1
                                   : series.size() - 1;
      if (wend < slots[i]) {
        continue;  // back-to-back disturbances share one window
      }
      report.responses.push_back(analyze_window(
          series, slots[i], wend,
          static_cast<dag::Steps>(slots[i]) * length, settle_tolerance));
    }
  }
  for (const DisturbanceResponse& resp : report.responses) {
    if (resp.recovery_quanta < 0) {
      report.max_recovery_quanta = -1;
    } else if (report.max_recovery_quanta >= 0) {
      report.max_recovery_quanta =
          std::max(report.max_recovery_quanta, resp.recovery_quanta);
    }
    report.max_overshoot = std::max(report.max_overshoot, resp.overshoot);
  }
  return report;
}

std::string format_resilience_report(const ResilienceReport& report) {
  std::ostringstream os;
  os << "resilience: " << report.failure_events << " failures, "
     << report.repair_events << " repairs, " << report.crash_events
     << " crashes, " << report.revocation_events << " revocations";
  if (report.failure_events > 0 || report.repair_events > 0 ||
      report.revocation_events > 0) {
    os << " (min capacity " << report.min_capacity << ")";
  }
  os << "\n";
  os << "accounting: allotted " << report.allotted_cycles << " = work "
     << report.work_done << " + lost " << report.lost_work << " + waste "
     << report.waste
     << (report.accounting_balances() ? " (balanced)" : " (IMBALANCED)")
     << "\n";
  os << "makespan: " << report.makespan << " vs fault-free "
     << report.reference_makespan << " (degradation ";
  os.precision(3);
  os << std::fixed << report.makespan_degradation << "x)\n";
  for (const DisturbanceResponse& resp : report.responses) {
    os << "disturbance @" << resp.step << ": recovery ";
    if (resp.recovery_quanta < 0) {
      os << "never";
    } else {
      os << resp.recovery_quanta << " quanta";
    }
    os << ", request overshoot " << resp.overshoot << "\n";
  }
  return os.str();
}

}  // namespace abg::fault
