// Deterministic fault plans: the disturbance half of the resilience story.
//
// The paper analyzes ABG's A-Control loop as a disturbance-rejecting
// controller (Theorem 1) but only ever simulates it on a well-behaved
// machine.  A FaultPlan is a seeded, fully deterministic script of the
// disturbances a production two-level scheduler must survive:
//
//   * processor failure / repair — the machine capacity seen by the OS
//     allocator shrinks and later recovers;
//   * job crash — a running job loses its in-flight quantum and re-enters
//     the admission queue, either restarting from scratch or resuming from
//     its last quantum-boundary checkpoint, with its request-policy state
//     reset or preserved;
//   * allotment revocation — the allocator forcibly caps one job's
//     allotment for a window (e.g. a higher-priority tenant reclaims
//     processors), independent of the job's request.
//
// Plans are plain data: builders below generate the step / impulse /
// Poisson churn patterns the resilience bench sweeps, and any plan can be
// assembled by hand.  The same plan replayed against the same workload
// and seed yields the identical schedule.
#pragma once

#include <vector>

#include "dag/job.hpp"
#include "util/rng.hpp"

namespace abg::fault {

/// Kind of disturbance a FaultEvent injects.
enum class FaultKind {
  /// `processors` machine processors fail at `step`.
  kProcessorFailure,
  /// `processors` previously failed processors come back at `step`.
  kProcessorRepair,
  /// Job `job` crashes during the quantum containing `step`.
  kJobCrash,
  /// Job `job`'s allotment is capped at `cap` for `duration` steps
  /// starting at `step` (duration 0 = one scheduling quantum).
  kAllotmentRevocation,
};

/// One scripted disturbance.
struct FaultEvent {
  /// Global simulation step at which the event takes effect.
  dag::Steps step = 0;
  FaultKind kind = FaultKind::kProcessorFailure;
  /// Processors affected (failure / repair).  Must be >= 1 for those kinds.
  int processors = 1;
  /// Target job by submission index (crash / revocation).
  int job = -1;
  /// Revocation: allotment ceiling while the window is active.
  int cap = 0;
  /// Revocation: window length in steps; 0 = the enclosing quantum only.
  dag::Steps duration = 0;
};

/// What a crashed job loses.
enum class WorkLoss {
  /// Resume from the last quantum-boundary checkpoint: completed quanta
  /// survive, only the in-flight quantum is forfeited.
  kCheckpointQuantum,
  /// All completed work is discarded; the job restarts as a fresh DAG.
  kRestartFromScratch,
};

/// What happens to the per-job request-policy state on restart.
enum class PolicyOnRestart {
  /// Feedback state survives the crash (the runtime checkpointed it).
  kPreserve,
  /// The policy is reset: the restarted job re-requests d(1).
  kReset,
};

/// A complete, deterministic disturbance script plus recovery semantics.
struct FaultPlan {
  /// Events in non-decreasing step order (normalize() enforces this).
  std::vector<FaultEvent> events;
  /// Work-loss semantics applied to every crash in the plan.
  WorkLoss work_loss = WorkLoss::kCheckpointQuantum;
  /// Request-policy semantics applied to every crash in the plan.
  PolicyOnRestart policy_on_restart = PolicyOnRestart::kPreserve;
  /// Steps a crashed job waits (beyond the crash quantum) before it is
  /// eligible for re-admission.
  dag::Steps restart_delay = 0;

  /// True when the plan injects nothing: engines treat an empty plan as
  /// a strict no-op and take the fault-free code path.
  bool empty() const { return events.empty(); }

  /// Stable-sorts events by step and validates fields; throws
  /// std::invalid_argument on a malformed event (negative step, crash
  /// without a job target, non-positive processor count, ...).
  void normalize();

  /// Step of the last event; 0 for an empty plan.
  dag::Steps last_event_step() const;

  /// Number of crash events in the plan.
  std::size_t crash_count() const;
};

/// Permanent loss: `processors` fail at `step` and never come back.
FaultPlan step_failure_plan(dag::Steps step, int processors);

/// Outage: `processors` fail at `step` and are repaired `outage` steps
/// later.
FaultPlan impulse_failure_plan(dag::Steps step, int processors,
                               dag::Steps outage);

/// Poisson processor churn: single-processor failures arrive as a Poisson
/// process of rate `failure_rate` (expected failures per step) over
/// [0, horizon); each failed processor is repaired after an exponential
/// outage with mean `mean_outage` steps.  At most `max_down` processors
/// are down at once (excess failures are dropped).  Fully deterministic
/// given the rng's seed.
FaultPlan poisson_churn_plan(util::Rng& rng, dag::Steps horizon,
                             double failure_rate, dag::Steps mean_outage,
                             int max_down);

/// `count` crashes of job `job`, the first during the quantum containing
/// `first_step`, then every `period` steps.
FaultPlan periodic_crash_plan(int job, dag::Steps first_step,
                              dag::Steps period, int count);

}  // namespace abg::fault
