// Record of the faults a simulation actually applied.
//
// The engines fill a FaultLog while replaying a FaultPlan so the
// resilience analysis can reconstruct exact lost-work accounting without
// re-deriving it from traces: every cycle the machine ever granted is
// either useful surviving work, work that was executed and then discarded
// by a crash, or waste.  The balance
//
//     allotted_cycles = work done + lost_work + waste
//
// (with waste = trace waste + (discarded_cycles - lost_work)) is checked
// by the resilience tests.
#pragma once

#include <vector>

#include "dag/job.hpp"

namespace abg::fault {

/// One applied job crash.
struct CrashRecord {
  /// Submission index of the crashed job.
  std::size_t job = 0;
  /// Global step of the quantum boundary (sync) or unit step (async) at
  /// which the crash was applied.
  dag::Steps step = 0;
  /// Executed tasks discarded by the crash (0 under checkpoint recovery).
  dag::TaskCount lost_work = 0;
  /// Allotted cycles dropped from the job's trace by the crash: the work
  /// above plus the idle fraction of the discarded quanta.
  dag::TaskCount discarded_cycles = 0;
};

/// Everything a faulty run recorded about its disturbances.
struct FaultLog {
  /// True when the simulation ran with a non-empty FaultPlan attached.
  bool enabled = false;
  /// Every applied crash, in application order.
  std::vector<CrashRecord> crashes;
  /// Step of every applied event (all kinds), in application order; the
  /// resilience analysis anchors its per-disturbance recovery windows
  /// here.
  std::vector<dag::Steps> disturbance_steps;
  /// Counts by kind.
  int failure_events = 0;
  int repair_events = 0;
  int revocation_events = 0;
  /// Minimum machine capacity the allocator ever saw (= P when no
  /// failures fired).
  int min_capacity = 0;
  /// Every processor cycle the machine granted, including cycles later
  /// discarded by restart-from-scratch crashes.  (The per-trace totals
  /// only cover surviving quanta.)
  dag::TaskCount allotted_cycles = 0;
  /// Sum of CrashRecord::lost_work.
  dag::TaskCount lost_work = 0;
  /// Sum of CrashRecord::discarded_cycles.
  dag::TaskCount discarded_cycles = 0;
};

}  // namespace abg::fault
