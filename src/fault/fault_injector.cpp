#include "fault/fault_injector.hpp"

#include <algorithm>

namespace abg::fault {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.normalize();
}

WindowFaults FaultInjector::advance(dag::Steps from, dag::Steps to) {
  WindowFaults out;
  const std::size_t live_before = revocations_.size();
  std::erase_if(revocations_,
                [from](const Window& w) { return w.end <= from; });
  out.capacity_changed = revocations_.size() != live_before;

  while (next_ < plan_.events.size() && plan_.events[next_].step < to) {
    const FaultEvent& e = plan_.events[next_++];
    out.applied.push_back(e);
    switch (e.kind) {
      case FaultKind::kProcessorFailure:
        failed_ += e.processors;
        out.capacity_changed = true;
        break;
      case FaultKind::kProcessorRepair:
        failed_ = std::max(0, failed_ - e.processors);
        out.capacity_changed = true;
        break;
      case FaultKind::kJobCrash:
        out.crashes.push_back(e);
        break;
      case FaultKind::kAllotmentRevocation: {
        // Duration 0 means "this window only": the cap expires when the
        // next window begins at `to`.
        const dag::Steps end =
            e.duration > 0 ? e.step + e.duration : to;
        revocations_.push_back(
            Window{static_cast<std::size_t>(e.job), e.cap, end});
        out.capacity_changed = true;
        break;
      }
    }
  }
  return out;
}

int FaultInjector::allotment_cap(std::size_t job) const {
  int cap = std::numeric_limits<int>::max();
  for (const Window& w : revocations_) {
    if (w.job == job) {
      cap = std::min(cap, w.cap);
    }
  }
  return cap;
}

void FaultInjector::reset() {
  next_ = 0;
  failed_ = 0;
  revocations_.clear();
}

}  // namespace abg::fault
