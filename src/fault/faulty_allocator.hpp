// Fault-injecting allocator decorator.
//
// Wraps any alloc::Allocator and filters the machine it sees through a
// FaultInjector: the inner allocator is offered capacity(P) processors
// instead of P (failed processors simply do not exist for it), and
// per-job allotments are clamped to any active revocation caps after the
// inner allocation.  Both transformations only ever shrink, so every
// invariant the inner allocator guarantees survives decoration:
// conservativeness (a_i <= d_i) trivially, and the pool bound because
// pool() reports the shrunken machine.  Fairness and non-reservation hold
// relative to the shrunken machine except for revoked jobs, which is the
// point — a revocation deliberately under-serves its target.
#pragma once

#include <memory>
#include <string>

#include "alloc/allocator.hpp"
#include "fault/fault_injector.hpp"

namespace abg::fault {

class FaultyAllocator final : public alloc::Allocator {
 public:
  /// Decorates `inner` (not owned; must outlive this object) with the
  /// faults of `injector` (not owned either).
  FaultyAllocator(alloc::Allocator& inner, const FaultInjector& injector);

  /// Owning variant, used by clone().
  FaultyAllocator(std::unique_ptr<alloc::Allocator> inner,
                  const FaultInjector& injector);

  std::vector<int> allocate(const std::vector<int>& requests,
                            int total_processors) override;
  bool size_aware() const override;
  std::vector<int> allocate_sized(const std::vector<int>& requests,
                                  const std::vector<double>& remaining,
                                  int total_processors) override;
  int pool(int total_processors) const override;
  void reset() override;
  std::string_view name() const override { return name_; }
  std::unique_ptr<alloc::Allocator> clone() const override;

  /// Processors the last allocate() call clamped away under revocation
  /// caps.  Those processors are held by the revoker, not idle, so the
  /// engine excludes them from the leftover availability it reports to
  /// jobs.
  int last_revoked() const { return last_revoked_; }

  const alloc::Allocator& inner() const { return *inner_; }

 private:
  void apply_revocation_caps(std::vector<int>& allotments);

  std::unique_ptr<alloc::Allocator> owned_;  // null for the non-owning form
  alloc::Allocator* inner_;
  const FaultInjector* injector_;
  int last_revoked_ = 0;
  std::string name_;
};

}  // namespace abg::fault
