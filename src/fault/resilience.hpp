// Resilience analysis: what a fault cost, and how fast the feedback loop
// recovered.
//
// Given a faulty run (with its FaultLog) and the fault-free reference run
// of the identical workload, analyze_resilience produces:
//
//   * exact lost-work accounting — every granted cycle is surviving work,
//     discarded (crash-lost) work, or waste, and the three must sum to
//     the granted capacity;
//   * per-disturbance recovery metrics on the aggregate request signal
//     Σ_j d_j(q): how many quanta until the signal re-settles after each
//     disturbance, and how far it overshoots its new settled level —
//     the Figure 1 instability story turned into a measured quantity;
//   * makespan degradation versus the fault-free reference.
//
// Recovery metrics need per-quantum-aligned traces (the synchronous
// engine); on averaged/async traces the accounting is still exact but the
// per-disturbance responses are left empty.
#pragma once

#include <string>
#include <vector>

#include "fault/fault_log.hpp"
#include "sim/simulator.hpp"

namespace abg::fault {

/// Feedback-loop response to one disturbance.
struct DisturbanceResponse {
  /// Step of the disturbance.
  dag::Steps step = 0;
  /// Global quanta from the disturbance until the aggregate request
  /// signal enters and stays within tolerance of its post-disturbance
  /// settled level; -1 when it never re-settles inside the window.
  std::int64_t recovery_quanta = -1;
  /// Peak of the aggregate request signal above its settled level within
  /// the window (processors; 0 for a monotone recovery).
  double overshoot = 0.0;
};

/// Complete resilience summary of one faulty run.
struct ResilienceReport {
  /// Surviving useful work (sum of per-trace quantum work).
  dag::TaskCount work_done = 0;
  /// Executed work discarded by crashes.
  dag::TaskCount lost_work = 0;
  /// Allotted cycles that produced nothing: per-trace waste plus the idle
  /// fraction of crash-discarded quanta.
  dag::TaskCount waste = 0;
  /// Every cycle the machine granted (from the engine's own counter).
  dag::TaskCount allotted_cycles = 0;
  /// The accounting identity the engines must maintain.
  bool accounting_balances() const {
    return work_done + lost_work + waste == allotted_cycles;
  }

  dag::Steps makespan = 0;
  dag::Steps reference_makespan = 0;
  /// makespan / reference_makespan; 0 when the reference is degenerate.
  double makespan_degradation = 0.0;

  /// One entry per distinct disturbed quantum, in time order (empty when
  /// the traces are not quantum-aligned).
  std::vector<DisturbanceResponse> responses;
  /// Worst recovery over all responses (-1 if any never settled).
  std::int64_t max_recovery_quanta = 0;
  /// Worst overshoot over all responses.
  double max_overshoot = 0.0;

  /// Counts carried over from the log.
  int failure_events = 0;
  int repair_events = 0;
  int revocation_events = 0;
  std::size_t crash_events = 0;
  int min_capacity = 0;
};

/// Analyzes `faulty` (a run produced with a FaultPlan attached) against
/// the fault-free `reference` run of the same workload.  `settle_tolerance`
/// is the relative band (with a 1-processor absolute floor) the aggregate
/// request signal must re-enter to count as recovered.
ResilienceReport analyze_resilience(const sim::SimResult& faulty,
                                    const sim::SimResult& reference,
                                    double settle_tolerance = 0.05);

/// Multi-line human-readable rendering of a report.
std::string format_resilience_report(const ResilienceReport& report);

}  // namespace abg::fault
