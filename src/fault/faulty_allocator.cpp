#include "fault/faulty_allocator.hpp"

namespace abg::fault {

FaultyAllocator::FaultyAllocator(alloc::Allocator& inner,
                                 const FaultInjector& injector)
    : inner_(&inner),
      injector_(&injector),
      name_("faulty(" + std::string(inner.name()) + ")") {}

FaultyAllocator::FaultyAllocator(std::unique_ptr<alloc::Allocator> inner,
                                 const FaultInjector& injector)
    : owned_(std::move(inner)),
      inner_(owned_.get()),
      injector_(&injector),
      name_("faulty(" + std::string(inner_->name()) + ")") {}

std::vector<int> FaultyAllocator::allocate(const std::vector<int>& requests,
                                           int total_processors) {
  std::vector<int> allotments =
      inner_->allocate(requests, injector_->capacity(total_processors));
  apply_revocation_caps(allotments);
  return allotments;
}

bool FaultyAllocator::size_aware() const { return inner_->size_aware(); }

std::vector<int> FaultyAllocator::allocate_sized(
    const std::vector<int>& requests, const std::vector<double>& remaining,
    int total_processors) {
  // The same shrink-only transform as allocate(): the inner allocator
  // sees the fault-reduced machine, sizes pass through untouched.
  std::vector<int> allotments = inner_->allocate_sized(
      requests, remaining, injector_->capacity(total_processors));
  apply_revocation_caps(allotments);
  return allotments;
}

void FaultyAllocator::apply_revocation_caps(std::vector<int>& allotments) {
  last_revoked_ = 0;
  if (injector_->revocation_active()) {
    for (std::size_t i = 0; i < allotments.size(); ++i) {
      const int cap = injector_->allotment_cap(i);
      if (allotments[i] > cap) {
        last_revoked_ += allotments[i] - cap;
        allotments[i] = cap;
      }
    }
  }
}

int FaultyAllocator::pool(int total_processors) const {
  return inner_->pool(injector_->capacity(total_processors));
}

void FaultyAllocator::reset() {
  inner_->reset();
  last_revoked_ = 0;
}

std::unique_ptr<alloc::Allocator> FaultyAllocator::clone() const {
  return std::unique_ptr<alloc::Allocator>(
      new FaultyAllocator(inner_->clone(), *injector_));
}

}  // namespace abg::fault
