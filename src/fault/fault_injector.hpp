// FaultInjector: replays a FaultPlan against a running simulation.
//
// The injector is the stateful walker the engines consult once per
// scheduling window: advance(from, to) consumes every event whose step
// falls in [from, to), updates the failed-processor count and the active
// revocation windows, and hands back the crashes the engine must apply.
// Capacity and revocation caps are then queried for the window just
// advanced to.  Windows must be advanced in non-decreasing order;
// reset() rewinds for a replay.
#pragma once

#include <limits>
#include <vector>

#include "fault/fault_plan.hpp"

namespace abg::fault {

/// Events that fired within one advanced window.
struct WindowFaults {
  /// Crash events to apply to currently active jobs.
  std::vector<FaultEvent> crashes;
  /// Every event consumed in the window (crashes included), for logging.
  std::vector<FaultEvent> applied;
  /// True when machine capacity or any revocation cap changed, i.e. the
  /// engine should re-partition even without a job-side event.
  bool capacity_changed = false;
};

class FaultInjector {
 public:
  /// Copies and normalizes the plan (throws std::invalid_argument on a
  /// malformed plan).
  explicit FaultInjector(FaultPlan plan);

  /// Consumes events with step in [from, to) and expires revocation
  /// windows ending at or before `from`.  Requires `to` to be
  /// non-decreasing across calls.
  WindowFaults advance(dag::Steps from, dag::Steps to);

  /// Machine capacity given `total` physical processors: total minus the
  /// currently failed ones, floored at 0.
  int capacity(int total) const {
    return failed_ < total ? total - failed_ : 0;
  }

  /// Currently failed processors.
  int failed_processors() const { return failed_; }

  /// Allotment ceiling for `job` under the revocation windows active in
  /// the most recently advanced window; INT_MAX when unconstrained.
  int allotment_cap(std::size_t job) const;

  /// True when any revocation window is currently active.
  bool revocation_active() const { return !revocations_.empty(); }

  const FaultPlan& plan() const { return plan_; }

  /// Rewinds to the start of the plan.
  void reset();

 private:
  struct Window {
    std::size_t job;
    int cap;
    dag::Steps end;
  };

  FaultPlan plan_;
  std::size_t next_ = 0;
  int failed_ = 0;
  std::vector<Window> revocations_;
};

}  // namespace abg::fault
