#include "alloc/unconstrained.hpp"

#include <algorithm>

namespace abg::alloc {

std::vector<int> Unconstrained::allocate(const std::vector<int>& requests,
                                         int total_processors) {
  validate_allocation_inputs(requests, total_processors);
  std::vector<int> allotment(requests.size(), 0);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    allotment[i] = std::min(requests[i], total_processors);
  }
  return allotment;
}

}  // namespace abg::alloc
