// Dynamic equi-partitioning (DEQ) — McCann, Vaswani & Zahorjan (1993).
//
// Water-filling division of the machine: every quantum, each job is
// entitled to an equal share; a job requesting less than its share gets
// exactly its request, and the surplus is re-divided among the remaining
// jobs until either all requests are met or the machine is exhausted.
// DEQ is fair, non-reserving and conservative — the allocator class the
// paper's Theorem 5 couples ABG with.  Indivisible remainders rotate across
// quanta so no job is systematically favored.
#pragma once

#include "alloc/allocator.hpp"

namespace abg::alloc {

class EquiPartition final : public Allocator {
 public:
  std::vector<int> allocate(const std::vector<int>& requests,
                            int total_processors) override;
  void reset() override { rotation_ = 0; }
  std::string_view name() const override { return "equi-partition"; }
  /// Copies the rotation offset: a clone continues the original's
  /// remainder rotation instead of restarting it at job 0.
  std::unique_ptr<Allocator> clone() const override {
    return std::make_unique<EquiPartition>(*this);
  }

 private:
  std::size_t rotation_ = 0;
};

}  // namespace abg::alloc
