#include "alloc/round_robin.hpp"

#include <algorithm>

namespace abg::alloc {

std::vector<int> RoundRobin::allocate(const std::vector<int>& requests,
                                      int total_processors) {
  validate_allocation_inputs(requests, total_processors);
  const std::size_t n = requests.size();
  std::vector<int> allotment(n, 0);
  if (n == 0) {
    ++rotation_;
    return allotment;
  }
  int remaining = total_processors;
  std::size_t cursor = rotation_ % n;
  std::size_t idle_lap = 0;  // consecutive jobs skipped; n means all done
  while (remaining > 0 && idle_lap < n) {
    if (allotment[cursor] < requests[cursor]) {
      ++allotment[cursor];
      --remaining;
      idle_lap = 0;
    } else {
      ++idle_lap;
    }
    cursor = (cursor + 1) % n;
  }
  ++rotation_;
  return allotment;
}

}  // namespace abg::alloc
