#include "alloc/weighted_equipartition.hpp"

#include <cmath>
#include <stdexcept>

namespace abg::alloc {

WeightedEquiPartition::WeightedEquiPartition(std::vector<double> weights)
    : weights_(std::move(weights)) {
  if (weights_.empty()) {
    throw std::invalid_argument("WeightedEquiPartition: no weights");
  }
  for (const double w : weights_) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "WeightedEquiPartition: weights must be positive and finite");
    }
  }
}

std::vector<int> WeightedEquiPartition::allocate(
    const std::vector<int>& requests, int total_processors) {
  validate_allocation_inputs(requests, total_processors);
  if (requests.size() != weights_.size()) {
    throw std::invalid_argument(
        "WeightedEquiPartition: request count does not match weight count");
  }
  const std::size_t n = requests.size();
  std::vector<int> allotment(n, 0);
  int remaining = total_processors;
  std::vector<std::size_t> unsatisfied;
  for (std::size_t i = 0; i < n; ++i) {
    if (requests[i] > 0) {
      unsatisfied.push_back(i);
    }
  }

  // Water-filling: grant every job whose outstanding need fits within its
  // weighted share of the remaining pool, then re-divide; when nobody
  // fits, hand out weighted integer shares and rotate the remainder.
  while (remaining > 0 && !unsatisfied.empty()) {
    double weight_sum = 0.0;
    for (const std::size_t j : unsatisfied) {
      weight_sum += weights_[j];
    }
    bool any_satisfied = false;
    std::vector<std::size_t> still_unsatisfied;
    for (const std::size_t j : unsatisfied) {
      const double share =
          static_cast<double>(remaining) * weights_[j] / weight_sum;
      const int need = requests[j] - allotment[j];
      if (static_cast<double>(need) <= share) {
        allotment[j] += need;
        remaining -= need;
        any_satisfied = true;
      } else {
        still_unsatisfied.push_back(j);
      }
    }
    unsatisfied = std::move(still_unsatisfied);
    if (any_satisfied) {
      continue;
    }
    // Nobody fits: floor of the weighted share each, remainder rotated.
    int handed = 0;
    for (const std::size_t j : unsatisfied) {
      const int share = static_cast<int>(std::floor(
          static_cast<double>(remaining) * weights_[j] / weight_sum));
      allotment[j] += share;
      handed += share;
    }
    int leftover = remaining - handed;
    remaining = 0;
    const std::size_t offset = rotation_ % unsatisfied.size();
    for (std::size_t k = 0; leftover > 0 && k < unsatisfied.size(); ++k) {
      const std::size_t j = unsatisfied[(offset + k) % unsatisfied.size()];
      if (allotment[j] < requests[j]) {
        ++allotment[j];
        --leftover;
      }
    }
    break;
  }
  ++rotation_;
  return allotment;
}

std::unique_ptr<Allocator> WeightedEquiPartition::clone() const {
  // Copy-construct so the rotation offset survives: a clone continues the
  // original's remainder rotation instead of restarting it at job 0.
  return std::make_unique<WeightedEquiPartition>(*this);
}

}  // namespace abg::alloc
