#include "alloc/hesrpt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abg::alloc {

HeSrpt::HeSrpt(double power) : power_(power) {
  if (!(power > 0.0) || power > 1.0) {
    throw std::invalid_argument("HeSrpt: power must be in (0, 1]");
  }
}

std::vector<int> HeSrpt::allocate(const std::vector<int>& requests,
                                  int total_processors) {
  // No sizes available: rank every job equal (the tie-break by index
  // keeps the result deterministic and the shares still telescope).
  return allocate_sized(requests,
                        std::vector<double>(requests.size(), 0.0),
                        total_processors);
}

std::vector<int> HeSrpt::allocate_sized(const std::vector<int>& requests,
                                        const std::vector<double>& remaining,
                                        int total_processors) {
  validate_allocation_inputs(requests, total_processors);
  if (remaining.size() != requests.size()) {
    throw std::invalid_argument(
        "HeSrpt: remaining and requests must have equal length");
  }
  std::vector<int> allotments(requests.size(), 0);
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i] > 0) {
      active.push_back(i);
    }
  }
  if (active.empty() || total_processors == 0) {
    return allotments;
  }

  // Rank 1..n by remaining work, largest first; equal sizes (and the
  // size-free fallback) break ties by job index so the ordering — and
  // therefore the whole allocation — is deterministic.
  std::stable_sort(active.begin(), active.end(),
                   [&remaining](std::size_t a, std::size_t b) {
                     return remaining[a] > remaining[b];
                   });

  const std::size_t n = active.size();
  const double inv_p = 1.0 / power_;
  const double total = static_cast<double>(total_processors);

  // Ideal real-valued shares theta_i * P, discretized by largest
  // remainder.  boundary(k) = (k/n)^(1/p) is exact at k = 0 and k = n,
  // so the integer shares always sum to exactly P before capping.
  std::vector<double> ideal(n, 0.0);
  std::vector<int> share(n, 0);
  int assigned = 0;
  double previous_boundary = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    const double boundary =
        std::pow(static_cast<double>(k) / static_cast<double>(n), inv_p);
    ideal[k - 1] = (boundary - previous_boundary) * total;
    previous_boundary = boundary;
    share[k - 1] = static_cast<int>(ideal[k - 1]);  // floor (ideal >= 0)
    assigned += share[k - 1];
  }
  int leftover = total_processors - assigned;
  // Hand the leftover units to the largest fractional parts; ties go to
  // the later rank (the smaller-remaining job), matching the policy's
  // preference order.
  std::vector<std::size_t> ranks(n);
  for (std::size_t k = 0; k < n; ++k) {
    ranks[k] = k;
  }
  std::stable_sort(ranks.begin(), ranks.end(),
                   [&ideal, &share](std::size_t a, std::size_t b) {
                     const double fa = ideal[a] - share[a];
                     const double fb = ideal[b] - share[b];
                     if (fa != fb) {
                       return fa > fb;
                     }
                     return a > b;
                   });
  for (std::size_t k = 0; k < n && leftover > 0; ++k) {
    ++share[ranks[k]];
    --leftover;
  }

  // The conservative contract caps each share at the job's request; the
  // freed surplus water-fills back in priority order (smallest remaining
  // first), so no processor idles while some request is unmet.
  int surplus = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t job = active[k];
    const int granted = std::min(share[k], requests[job]);
    allotments[job] = granted;
    surplus += share[k] - granted;
  }
  for (std::size_t k = n; k-- > 0 && surplus > 0;) {
    const std::size_t job = active[k];
    const int extra =
        std::min(surplus, requests[job] - allotments[job]);
    allotments[job] += extra;
    surplus -= extra;
  }
  return allotments;
}

}  // namespace abg::alloc
