// Weighted dynamic equi-partitioning.
//
// Generalizes DEQ to per-job priorities: each quantum, job i is entitled
// to a share proportional to its weight w_i; jobs requesting less than
// their entitlement get their request and the surplus is re-divided among
// the rest in proportion to their weights.  With equal weights this is
// exactly DEQ.  Weighted sharing is how production space-sharing systems
// express job priorities; the scheduler side (ABG / A-Greedy) is
// unchanged — conservativeness and non-reservation still hold, fairness
// becomes weighted fairness.
#pragma once

#include "alloc/allocator.hpp"

namespace abg::alloc {

class WeightedEquiPartition final : public Allocator {
 public:
  /// One positive weight per job; allocate() calls must pass request
  /// vectors of exactly this size.
  explicit WeightedEquiPartition(std::vector<double> weights);

  std::vector<int> allocate(const std::vector<int>& requests,
                            int total_processors) override;
  void reset() override { rotation_ = 0; }
  std::string_view name() const override { return "weighted-equi"; }
  std::unique_ptr<Allocator> clone() const override;

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
  std::size_t rotation_ = 0;
};

}  // namespace abg::alloc
