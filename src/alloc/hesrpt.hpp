// heSRPT-style size-aware allocation (Berg, Vardoyan, Harchol-Balter).
//
// For jobs with sublinear speedup s(k) = k^p, heSRPT gives *every* job a
// share simultaneously — unlike strict SRPT it never parks all but one
// job — with the share schedule favoring the job closest to completion:
// index the active jobs 1..n by remaining work, largest first, and give
// job i the fraction
//
//     theta_i = (i/n)^(1/p) - ((i-1)/n)^(1/p)
//
// of the machine (the fractions telescope to exactly 1).  The smallest
// remaining job (i = n) gets the largest share, which minimizes mean
// flowtime in the k^p speedup regime.  This allocator is the scenario
// library's competing policy for the `sublinear` generator: pair it with
// a static full-machine request so the desire feedback never caps the
// shares, or with ABG/A-Greedy to study the interaction.
//
// It is deliberately *unfair* (allocator properties fair/non-reserving do
// not both hold; it stays conservative and non-reserving), so it is a
// competing policy, not a drop-in DEQ replacement.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "alloc/allocator.hpp"

namespace abg::alloc {

/// Size-aware heSRPT shares with largest-remainder discretization.
class HeSrpt final : public Allocator {
 public:
  /// `power` is the speedup exponent p in (0, 1]; p = 1 degenerates to
  /// pure SRPT (all processors to the smallest job).  Throws
  /// std::invalid_argument outside the range.
  explicit HeSrpt(double power = 0.5);

  /// Without sizes every job counts as equally large; ties resolve by
  /// job index (deterministic), so the result is a valid conservative
  /// allocation but the policy only becomes heSRPT when the engine
  /// supplies remaining work via allocate_sized.
  std::vector<int> allocate(const std::vector<int>& requests,
                            int total_processors) override;

  bool size_aware() const override { return true; }

  std::vector<int> allocate_sized(const std::vector<int>& requests,
                                  const std::vector<double>& remaining,
                                  int total_processors) override;

  std::string_view name() const override { return "hesrpt"; }

  std::unique_ptr<Allocator> clone() const override {
    return std::make_unique<HeSrpt>(power_);
  }

  double power() const { return power_; }

 private:
  double power_;
};

}  // namespace abg::alloc
