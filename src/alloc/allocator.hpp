// OS-level processor allocators (the system half of the two-level
// framework).
//
// Between quanta the allocator converts the jobs' processor requests into
// allotments.  Following the paper, all allocators here are *conservative*
// (never allot more than requested: a(q) <= d(q)).  The properties the
// analysis needs (Section 5.1):
//   * fair          — all jobs get an equal number of processors unless a
//                     job requests fewer;
//   * non-reserving — no processor stays idle while some job wants more.
// Dynamic equi-partitioning satisfies both.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

namespace abg::alloc {

/// Strategy for dividing P processors among competing job requests, invoked
/// once per scheduling quantum.
class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Returns one allotment per request, in order.  Every allotment is
  /// in [0, request_i], and implementations never exceed the machine size
  /// (the availability-profile allocator may offer fewer than
  /// `total_processors`).  Called exactly once per quantum, in quantum
  /// order.  Requires non-negative requests and total_processors >= 0.
  virtual std::vector<int> allocate(const std::vector<int>& requests,
                                    int total_processors) = 0;

  /// Processor pool the allocator will draw on for the *next* quantum —
  /// `total_processors` unless the allocator imposes its own availability
  /// (see AvailabilityProfile).  The simulation engine uses this to record
  /// per-job processor availability p(q) for trim analysis.
  virtual int pool(int total_processors) const { return total_processors; }

  /// Resets any cross-quantum state (rotation offsets, profile position).
  virtual void reset() {}

  /// True when the allocator wants remaining-size information; engines
  /// then call allocate_sized instead of allocate.  Request-only
  /// allocators (the default) never see sizes, so their call pattern is
  /// unchanged.
  virtual bool size_aware() const { return false; }

  /// Size-aware allocation: `remaining[i]` is job i's remaining work (0
  /// for jobs with no request).  The base implementation ignores the
  /// sizes and defers to allocate(), so decorators can forward
  /// unconditionally.  The conservative contract (allotment <= request)
  /// applies unchanged.
  virtual std::vector<int> allocate_sized(const std::vector<int>& requests,
                                          const std::vector<double>& remaining,
                                          int total_processors) {
    (void)remaining;
    return allocate(requests, total_processors);
  }

  /// Human-readable allocator name.
  virtual std::string_view name() const = 0;

  virtual std::unique_ptr<Allocator> clone() const = 0;
};

/// Validates allocator inputs; shared by implementations.
void validate_allocation_inputs(const std::vector<int>& requests,
                                int total_processors);

}  // namespace abg::alloc
