#include "alloc/availability_profile.hpp"

#include <algorithm>
#include <stdexcept>

namespace abg::alloc {

AvailabilityProfile::AvailabilityProfile(std::vector<int> availability)
    : availability_(std::move(availability)) {
  if (availability_.empty()) {
    throw std::invalid_argument("AvailabilityProfile: empty profile");
  }
  for (const int p : availability_) {
    if (p < 0) {
      throw std::invalid_argument(
          "AvailabilityProfile: negative availability");
    }
  }
}

std::vector<int> AvailabilityProfile::allocate(
    const std::vector<int>& requests, int total_processors) {
  validate_allocation_inputs(requests, total_processors);
  ++quantum_;
  int pool = std::min(availability_at(quantum_), total_processors);
  std::vector<int> allotment(requests.size(), 0);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    allotment[i] = std::min(requests[i], pool);
    pool -= allotment[i];
  }
  return allotment;
}

int AvailabilityProfile::pool(int total_processors) const {
  return std::min(availability_at(quantum_ + 1), total_processors);
}

std::unique_ptr<Allocator> AvailabilityProfile::clone() const {
  // Copy-construct so the profile position survives: a clone replays the
  // profile from the original's current quantum, not from the start.
  return std::make_unique<AvailabilityProfile>(*this);
}

int AvailabilityProfile::availability_at(std::size_t q) const {
  if (q == 0) {
    throw std::invalid_argument(
        "AvailabilityProfile::availability_at: quanta are 1-based");
  }
  const std::size_t idx = std::min(q - 1, availability_.size() - 1);
  return availability_[idx];
}

}  // namespace abg::alloc
