// Availability-profile allocator: the trim-analysis adversary.
//
// Trim analysis (Section 6.1) limits the power of an OS allocator that can
// behave adversarially — e.g. offer many processors exactly when the job's
// parallelism is low.  This allocator replays a per-quantum availability
// sequence p(1), p(2), ... (clamping to the final value when the run is
// longer than the profile) and grants each job min{d(q), remaining
// availability} in order.  It is conservative but deliberately neither fair
// nor non-reserving, so tests can construct the adversarial schedules the
// theorems must survive.
#pragma once

#include <vector>

#include "alloc/allocator.hpp"

namespace abg::alloc {

class AvailabilityProfile final : public Allocator {
 public:
  /// `availability[q-1]` is the processor availability p(q) of quantum q.
  /// Must be non-empty with non-negative entries.
  explicit AvailabilityProfile(std::vector<int> availability);

  std::vector<int> allocate(const std::vector<int>& requests,
                            int total_processors) override;
  int pool(int total_processors) const override;
  void reset() override { quantum_ = 0; }
  std::string_view name() const override { return "availability-profile"; }
  std::unique_ptr<Allocator> clone() const override;

  /// The availability that was (or will be) offered in quantum q (1-based).
  int availability_at(std::size_t q) const;

 private:
  std::vector<int> availability_;
  std::size_t quantum_ = 0;  // quanta served so far
};

}  // namespace abg::alloc
