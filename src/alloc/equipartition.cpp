#include "alloc/equipartition.hpp"

#include <numeric>
#include <stdexcept>

namespace abg::alloc {

void validate_allocation_inputs(const std::vector<int>& requests,
                                int total_processors) {
  if (total_processors < 0) {
    throw std::invalid_argument("Allocator: negative machine size");
  }
  for (const int d : requests) {
    if (d < 0) {
      throw std::invalid_argument("Allocator: negative request");
    }
  }
}

std::vector<int> EquiPartition::allocate(const std::vector<int>& requests,
                                         int total_processors) {
  validate_allocation_inputs(requests, total_processors);
  const std::size_t n = requests.size();
  std::vector<int> allotment(n, 0);
  if (n == 0 || total_processors == 0) {
    ++rotation_;
    return allotment;
  }

  int remaining = total_processors;
  std::vector<std::size_t> unsatisfied;
  unsatisfied.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (requests[i] > 0) {
      unsatisfied.push_back(i);
    }
  }

  while (remaining > 0 && !unsatisfied.empty()) {
    const int count = static_cast<int>(unsatisfied.size());
    const int share = remaining / count;
    if (share == 0) {
      // Fewer processors than jobs: hand out the remainder one each,
      // starting from a rotating offset for long-run fairness.
      const std::size_t offset = rotation_ % unsatisfied.size();
      for (int k = 0; k < remaining; ++k) {
        const std::size_t j =
            unsatisfied[(offset + static_cast<std::size_t>(k)) %
                        unsatisfied.size()];
        ++allotment[j];
      }
      remaining = 0;
      break;
    }
    // Jobs whose outstanding need fits within the fair share are granted in
    // full; their surplus is re-divided on the next pass.
    bool any_satisfied = false;
    std::vector<std::size_t> still_unsatisfied;
    still_unsatisfied.reserve(unsatisfied.size());
    for (const std::size_t j : unsatisfied) {
      const int need = requests[j] - allotment[j];
      if (need <= share) {
        allotment[j] += need;
        remaining -= need;
        any_satisfied = true;
      } else {
        still_unsatisfied.push_back(j);
      }
    }
    unsatisfied = std::move(still_unsatisfied);
    if (any_satisfied) {
      continue;
    }
    // Nobody fits within the share: every remaining job takes the share,
    // and the sub-share remainder rotates.
    for (const std::size_t j : unsatisfied) {
      allotment[j] += share;
      remaining -= share;
    }
    const std::size_t offset = rotation_ % unsatisfied.size();
    for (int k = 0; k < remaining; ++k) {
      const std::size_t j =
          unsatisfied[(offset + static_cast<std::size_t>(k)) %
                      unsatisfied.size()];
      ++allotment[j];
    }
    remaining = 0;
  }
  ++rotation_;
  return allotment;
}

}  // namespace abg::alloc
