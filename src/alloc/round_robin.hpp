// Round-robin allocator (He et al. couple A-Greedy with round-robin as an
// alternative to DEQ).
//
// Processors are dealt one at a time to jobs in rotating order, skipping
// jobs whose request is already met, until the machine or all requests are
// exhausted.  The rotation offset advances each quantum so the extra
// processor from indivisible remainders circulates.  Round-robin is
// conservative and non-reserving; its allotments differ from DEQ by at most
// one processor per job.
#pragma once

#include "alloc/allocator.hpp"

namespace abg::alloc {

class RoundRobin final : public Allocator {
 public:
  std::vector<int> allocate(const std::vector<int>& requests,
                            int total_processors) override;
  void reset() override { rotation_ = 0; }
  std::string_view name() const override { return "round-robin"; }
  /// Copies the rotation offset: a clone continues the original's dealing
  /// order instead of restarting it at job 0.
  std::unique_ptr<Allocator> clone() const override {
    return std::make_unique<RoundRobin>(*this);
  }

 private:
  std::size_t rotation_ = 0;
};

}  // namespace abg::alloc
