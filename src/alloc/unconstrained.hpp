// Unconstrained allocator: every request is granted up to the machine size,
// independently per job.
//
// This models the paper's first simulation set — a single job running alone
// on P processors, where "all processor requests from both schedulers are
// granted".  With multiple jobs it can oversubscribe the machine and is
// therefore intended for single-job studies only.
#pragma once

#include "alloc/allocator.hpp"

namespace abg::alloc {

class Unconstrained final : public Allocator {
 public:
  std::vector<int> allocate(const std::vector<int>& requests,
                            int total_processors) override;
  std::string_view name() const override { return "unconstrained"; }
  std::unique_ptr<Allocator> clone() const override {
    return std::make_unique<Unconstrained>();
  }
};

}  // namespace abg::alloc
