// Aggregation and serialization of sweep results.
//
// The sink is the single funnel between "a vector of RunRecords" and the
// artifacts the repository tracks:
//
//   * JSONL — one compact JSON object per record, in run-id order.  This
//     is the raw trajectory; byte-identical across thread counts because
//     the runner's records are.
//   * summary JSON (BENCH_*.json) — per (group, scheduler) mean and 95%
//     bootstrap confidence interval of every metric, via util/bootstrap.
//
// Summary bootstrap seeds derive from the base seed and the group ordinal
// (Rng::derive_seed), so summaries are as reproducible as the runs.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "util/json.hpp"

namespace abg::exp {

/// Collects RunRecords and renders the JSONL / summary artifacts.
class ResultSink {
 public:
  /// `benchmark` names the artifact (e.g. "sweeps", "throughput") and is
  /// echoed into the summary header; `base_seed` seeds the bootstrap.
  ResultSink(std::string benchmark, std::uint64_t base_seed)
      : benchmark_(std::move(benchmark)), base_seed_(base_seed) {}

  /// Adds one record (kept in insertion order; the runner already orders
  /// by run id).
  void add(RunRecord record);

  /// Adds a whole result vector.
  void add_all(std::vector<RunRecord> records);

  const std::vector<RunRecord>& records() const { return records_; }

  /// One compact JSON object per record, newline-terminated, in run-id
  /// order (records are stably sorted by run_id before emission).
  void write_jsonl(std::ostream& os) const;

  /// The summary tree: per (group, scheduler) record counts plus
  /// mean / CI-lower / CI-upper of every metric.  Quarantined records
  /// (non-empty `failure`) contribute no samples; when any exist, the
  /// summary carries a "quarantined" array naming them — the degraded-
  /// coverage report — and "total_runs" counts only completed records, so
  /// quarantine-free artifacts stay byte-identical to pre-robustness ones.
  util::Json summary() const;

  /// Serializes summary() with a trailing newline.
  void write_summary(std::ostream& os) const;

  /// write_jsonl / write_summary into `path` via util::write_file_atomic:
  /// the artifact is either fully written or absent/previous, never torn.
  void write_jsonl_file(const std::string& path) const;
  void write_summary_file(const std::string& path) const;

 private:
  std::string benchmark_;
  std::uint64_t base_seed_;
  std::vector<RunRecord> records_;
};

/// Renders one record as a compact JSON object (no newline).
util::Json record_to_json(const RunRecord& record);

/// Inverse of record_to_json, used by journal resume.  Absent optional
/// keys restore their defaults — engine "sync", hier_groups 0, failure ""
/// — so a resumed record buckets and re-serializes exactly like a freshly
/// executed one.  Throws (std::out_of_range / std::logic_error) on a
/// record missing required keys.
RunRecord record_from_json(const util::Json& json);

}  // namespace abg::exp
