// Aggregation and serialization of sweep results.
//
// The sink is the single funnel between "a vector of RunRecords" and the
// artifacts the repository tracks:
//
//   * JSONL — one compact JSON object per record, in run-id order.  This
//     is the raw trajectory; byte-identical across thread counts because
//     the runner's records are.
//   * summary JSON (BENCH_*.json) — per (group, scheduler) mean and 95%
//     bootstrap confidence interval of every metric, via util/bootstrap.
//
// Summary bootstrap seeds derive from the base seed and the group ordinal
// (Rng::derive_seed), so summaries are as reproducible as the runs.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "util/json.hpp"

namespace abg::exp {

/// Collects RunRecords and renders the JSONL / summary artifacts.
class ResultSink {
 public:
  /// `benchmark` names the artifact (e.g. "sweeps", "throughput") and is
  /// echoed into the summary header; `base_seed` seeds the bootstrap.
  ResultSink(std::string benchmark, std::uint64_t base_seed)
      : benchmark_(std::move(benchmark)), base_seed_(base_seed) {}

  /// Adds one record (kept in insertion order; the runner already orders
  /// by run id).
  void add(RunRecord record);

  /// Adds a whole result vector.
  void add_all(std::vector<RunRecord> records);

  const std::vector<RunRecord>& records() const { return records_; }

  /// One compact JSON object per record, newline-terminated, in run-id
  /// order (records are stably sorted by run_id before emission).
  void write_jsonl(std::ostream& os) const;

  /// The summary tree: per (group, scheduler) record counts plus
  /// mean / CI-lower / CI-upper of every metric.
  util::Json summary() const;

  /// Serializes summary() with a trailing newline.
  void write_summary(std::ostream& os) const;

 private:
  std::string benchmark_;
  std::uint64_t base_seed_;
  std::vector<RunRecord> records_;
};

/// Renders one record as a compact JSON object (no newline).
util::Json record_to_json(const RunRecord& record);

}  // namespace abg::exp
