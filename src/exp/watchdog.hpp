// Wall-clock watchdog for sweep runs.
//
// One monitor thread guards every in-flight run of a sweep.  A worker
// registers its run's CancelToken before executing (watch() returns an
// RAII Lease; destroying it deregisters), and the monitor cancels the
// token with CancelCause::kTimeout once the run's wall-clock deadline
// passes.  Cancellation is cooperative — the engines poll their token at
// quantum boundaries and unwind with util::CancelledError — so the
// watchdog never interrupts a thread asynchronously, which keeps it
// sanitizer-clean and leaves no detached threads behind.
//
// The monitor also polls an optional abort token (the CLI's second-SIGINT
// escalation): when it fires, every active lease's token is cancelled
// with kShutdown, which is how in-flight runs are torn down without the
// signal handler ever taking a lock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

#include "util/cancel.hpp"

namespace abg::exp {

/// Deterministic exponential backoff: `base * 2^attempt` seconds, capped
/// at `cap`.  No jitter — retries are rare and reproducible delays make
/// fixture timing predictable.
double backoff_seconds(double base, int attempt, double cap = 30.0);

/// Monitor thread cancelling overdue (or aborted) run tokens.
class Watchdog {
 public:
  struct Config {
    /// Per-run wall-clock deadline; <= 0 disables deadlines (the watchdog
    /// then only serves abort propagation).
    double run_timeout_seconds = 0.0;
    /// Optional abort token: when it fires, every active lease's token is
    /// cancelled with kShutdown.  Must outlive the watchdog.
    const util::CancelToken* abort = nullptr;
  };

  /// Deregisters a watched token on destruction.  Movable, not copyable.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { swap(other); }
    Lease& operator=(Lease&& other) noexcept {
      release();
      swap(other);
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    /// Deregisters early (idempotent).
    void release();

   private:
    friend class Watchdog;
    Lease(Watchdog* owner, std::uint64_t id) : owner_(owner), id_(id) {}
    void swap(Lease& other) {
      std::swap(owner_, other.owner_);
      std::swap(id_, other.id_);
    }

    Watchdog* owner_ = nullptr;
    std::uint64_t id_ = 0;
  };

  explicit Watchdog(Config config);
  /// Stops and joins the monitor thread.  All leases must be released
  /// first (the runner's structure guarantees it: leases live inside
  /// pool tasks, and the pool is drained before the watchdog dies).
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Starts guarding `token`: it is cancelled with kTimeout once
  /// run_timeout_seconds elapse (if enabled), or with kShutdown when the
  /// abort token fires.  The token must outlive the lease.
  Lease watch(util::CancelToken* token);

 private:
  struct Entry {
    util::CancelToken* token = nullptr;
    std::chrono::steady_clock::time_point deadline;
  };

  void unwatch(std::uint64_t id);
  void loop();

  const Config config_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Entry> entries_;
  std::uint64_t next_id_ = 1;
  bool stop_ = false;
  std::thread monitor_;
};

}  // namespace abg::exp
