// The sweep engine: executes a grid of RunSpecs on a fixed thread pool.
//
// Determinism is the design center.  Each run's RNG stream is the pure
// function Rng::derive(base_seed, spec.seed_index) — no state is shared
// between runs, no run observes another — and each task writes its record
// into a pre-sized slot indexed by position in the grid.  The returned
// vector is therefore byte-for-byte independent of thread count and
// completion order: `--jobs 1` and `--jobs 8` produce identical results.
//
// Wall-clock telemetry (runs/sec, ETA) goes only through the progress
// callback, never into records.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exp/run_spec.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/sweep_timeline.hpp"

namespace abg::exp {

/// Result of one run: identity plus a flat, ordered metric map.  Generic
/// on purpose — simulation sweeps, resilience studies and throughput
/// microbenchmarks all flow through the same record type and sink.
struct RunRecord {
  std::int64_t run_id = -1;
  std::string group;
  std::string scheduler;
  std::string workload;
  std::string fault;
  /// Simulation engine the run used ("sync" / "async").  Serialized to
  /// JSONL only when it differs from the default "sync" (and is
  /// non-empty), so pre-engine-axis artifacts stay byte-identical.
  std::string engine;
  /// Hierarchical allocation of the run: group count (0 = flat) and group
  /// allocator name.  Serialized only when hier_groups > 0 (same omission
  /// rule as `engine`), so pre-hier artifacts stay byte-identical.
  int hier_groups = 0;
  std::string hier_alloc;
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, double>> metrics;

  /// Value of the named metric; throws std::out_of_range when absent.
  double metric(const std::string& name) const;
  /// True when the named metric is present.
  bool has_metric(const std::string& name) const;
};

/// Live telemetry handed to the progress callback after every completed
/// run (under the runner's lock: callbacks need no synchronization).
struct Progress {
  std::int64_t completed = 0;
  std::int64_t total = 0;
  double runs_per_second = 0.0;
  /// Wall-clock seconds since the sweep started.
  double elapsed_seconds = 0.0;
  /// Estimated wall-clock seconds to completion at the current rate.
  double eta_seconds = 0.0;
};

/// Configuration of a sweep execution.
struct SweepConfig {
  /// Worker threads; <= 0 selects hardware_concurrency.
  int threads = 1;
  /// Base seed: run i draws from Rng::derive(base_seed, spec_i.seed_index).
  std::uint64_t base_seed = 2008;
  /// Optional telemetry hook; see stderr_progress().
  std::function<void(const Progress&)> on_progress;
  /// When set, every run simulates under a private EventBus + MetricsSink
  /// and its registry is merged here under the runner's lock.  Merges are
  /// commutative and associative, so the merged registry is byte-identical
  /// at any thread count.
  obs::MetricsRegistry* metrics = nullptr;
  /// When set, each run's wall-clock execution slice (worker thread, start,
  /// end) is recorded here for Perfetto export.
  obs::SweepTimeline* timeline = nullptr;
  /// When set, accumulates span "sweep.run" (seconds + run count) so
  /// BENCH_profile.json can report sweep throughput.
  obs::Profiler* profiler = nullptr;
};

/// Progress callback that renders a single self-overwriting status line
/// ("runs completed, runs/sec, ETA") on stderr.
std::function<void(const Progress&)> stderr_progress();

/// Executes one RunSpec in the calling thread and returns its record (with
/// run_id unset).  This is the unit of work SweepRunner parallelizes;
/// exposed so tests and special-purpose harnesses can run it directly.
RunRecord execute_run(const RunSpec& spec, std::uint64_t base_seed);

/// As above, but additionally accumulates the run's engine metrics into
/// `*metrics_out` (not cleared first) when non-null: the run simulates
/// under a private EventBus with a MetricsSink attached, chained into
/// spec.obs.event_bus when that is also set.  For a faulted spec the
/// fault-free reference simulation is observed too (it is part of the
/// run's cost).
RunRecord execute_run(const RunSpec& spec, std::uint64_t base_seed,
                      obs::MetricsRegistry* metrics_out);

/// Thread-pool executor for RunSpec grids.
class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig config) : config_(std::move(config)) {}

  /// Runs every spec and returns records ordered by grid position
  /// (records[i].run_id == i).  An empty grid is a no-op returning {}.
  /// The first exception thrown by any run propagates; remaining runs
  /// still execute.
  std::vector<RunRecord> run(const std::vector<RunSpec>& specs) const;

 private:
  SweepConfig config_;
};

}  // namespace abg::exp
