// The sweep engine: executes a grid of RunSpecs on a fixed thread pool.
//
// Determinism is the design center.  Each run's RNG stream is the pure
// function Rng::derive(base_seed, spec.seed_index) — no state is shared
// between runs, no run observes another — and each task writes its record
// into a pre-sized slot indexed by position in the grid.  The returned
// vector is therefore byte-for-byte independent of thread count and
// completion order: `--jobs 1` and `--jobs 8` produce identical results.
//
// Wall-clock telemetry (runs/sec, ETA) goes only through the progress
// callback, never into records.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exp/run_spec.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/sweep_timeline.hpp"
#include "util/cancel.hpp"

namespace abg::exp {

class RunJournal;
struct JournalReplay;

/// Result of one run: identity plus a flat, ordered metric map.  Generic
/// on purpose — simulation sweeps, resilience studies and throughput
/// microbenchmarks all flow through the same record type and sink.
struct RunRecord {
  std::int64_t run_id = -1;
  std::string group;
  std::string scheduler;
  std::string workload;
  std::string fault;
  /// Simulation engine the run used ("sync" / "async").  Serialized to
  /// JSONL only when it differs from the default "sync" (and is
  /// non-empty), so pre-engine-axis artifacts stay byte-identical.
  std::string engine;
  /// Hierarchical allocation of the run: group count (0 = flat) and group
  /// allocator name.  Serialized only when hier_groups > 0 (same omission
  /// rule as `engine`), so pre-hier artifacts stay byte-identical.
  int hier_groups = 0;
  std::string hier_alloc;
  /// Cluster axis of the run: machine count (0 = flat) and router policy
  /// name.  Serialized only when cluster_machines > 0 (same omission rule
  /// as `hier_groups`), so pre-cluster artifacts stay byte-identical.
  int cluster_machines = 0;
  std::string router;
  /// Arrival-process family of an open-system run ("poisson" / "mmpp" /
  /// "diurnal" / "heavytail" / "trace"); empty — the default — for closed
  /// runs.  Serialized only when non-empty, so closed artifacts stay
  /// byte-identical.
  std::string arrival;
  /// Why the cell was quarantined ("timeout" / "error: ..."); empty — the
  /// default — for completed runs.  A quarantined record carries no
  /// metrics, is excluded from summary statistics, and is serialized with
  /// a "failure" key; completed records serialize exactly as before the
  /// field existed.
  std::string failure;
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, double>> metrics;

  /// Value of the named metric; throws std::out_of_range when absent.
  double metric(const std::string& name) const;
  /// True when the named metric is present.
  bool has_metric(const std::string& name) const;
};

/// Live telemetry handed to the progress callback after every completed
/// run (under the runner's lock: callbacks need no synchronization).
struct Progress {
  std::int64_t completed = 0;
  std::int64_t total = 0;
  double runs_per_second = 0.0;
  /// Wall-clock seconds since the sweep started.
  double elapsed_seconds = 0.0;
  /// Estimated wall-clock seconds to completion at the current rate.
  double eta_seconds = 0.0;
};

/// Durability / fault-handling knobs of a sweep execution.  The defaults
/// are all strict no-ops: no journal, no resume, no deadlines, no retry
/// budget, no shutdown tokens — run_monitored() then executes exactly the
/// grid, once each, and quarantines any cell whose single attempt throws.
struct RobustnessConfig {
  /// Per-run wall-clock deadline in seconds; <= 0 disables the watchdog
  /// deadline (runs may still be torn down via `abort`).
  double run_timeout_seconds = 0.0;
  /// Extra attempts granted to a failing cell before it is quarantined
  /// (0 = one attempt, no retry).
  int max_retries = 0;
  /// Base of the deterministic exponential retry backoff, in seconds
  /// (attempt k waits backoff * 2^(k-1)).
  double backoff_seconds = 0.1;
  /// When set, every cell lifecycle event is appended here (see
  /// exp/journal.hpp).  Must outlive the sweep.
  RunJournal* journal = nullptr;
  /// When set, cells recorded complete in the replay (with a matching
  /// spec digest) are re-used instead of executed.
  const JournalReplay* resume = nullptr;
  /// Orderly-shutdown token (first SIGINT): once fired, no new cell
  /// starts; in-flight runs finish and are journaled.
  const util::CancelToken* drain = nullptr;
  /// Escalation token (second SIGINT): once fired, in-flight runs are
  /// cancelled too (via the watchdog).  Implies drain.
  const util::CancelToken* abort = nullptr;
};

/// Configuration of a sweep execution.
struct SweepConfig {
  /// Worker threads; <= 0 selects hardware_concurrency.
  int threads = 1;
  /// Base seed: run i draws from Rng::derive(base_seed, spec_i.seed_index).
  std::uint64_t base_seed = 2008;
  /// Optional telemetry hook; see stderr_progress().
  std::function<void(const Progress&)> on_progress;
  /// When set, every run simulates under a private EventBus + MetricsSink
  /// and its registry is merged here under the runner's lock.  Merges are
  /// commutative and associative, so the merged registry is byte-identical
  /// at any thread count.
  obs::MetricsRegistry* metrics = nullptr;
  /// When set, each run's wall-clock execution slice (worker thread, start,
  /// end) is recorded here for Perfetto export.
  obs::SweepTimeline* timeline = nullptr;
  /// When set, accumulates span "sweep.run" (seconds + run count) so
  /// BENCH_profile.json can report sweep throughput.
  obs::Profiler* profiler = nullptr;
  /// Durability knobs used by run_monitored(); ignored by run().
  RobustnessConfig robustness;
};

/// Progress callback that renders a single self-overwriting status line
/// ("runs completed, runs/sec, ETA") on stderr.
std::function<void(const Progress&)> stderr_progress();

/// Executes one RunSpec in the calling thread and returns its record (with
/// run_id unset).  This is the unit of work SweepRunner parallelizes;
/// exposed so tests and special-purpose harnesses can run it directly.
RunRecord execute_run(const RunSpec& spec, std::uint64_t base_seed);

/// As above, but additionally accumulates the run's engine metrics into
/// `*metrics_out` (not cleared first) when non-null: the run simulates
/// under a private EventBus with a MetricsSink attached, chained into
/// spec.obs.event_bus when that is also set.  For a faulted spec the
/// fault-free reference simulation is observed too (it is part of the
/// run's cost).
RunRecord execute_run(const RunSpec& spec, std::uint64_t base_seed,
                      obs::MetricsRegistry* metrics_out);

/// Per-attempt execution context of the monitored sweep path.
struct RunContext {
  /// As the metrics_out parameter of the overload above.
  obs::MetricsRegistry* metrics = nullptr;
  /// Cancellation token threaded into the run's SimConfig; the engines
  /// poll it at quantum boundaries and unwind with util::CancelledError.
  const util::CancelToken* cancel = nullptr;
  /// Zero-based attempt number (consumed by RunSpec::debug hooks).
  int attempt = 0;
};

/// The fully-parameterized unit of work: execute_run with cancellation
/// and attempt context.  The simpler overloads delegate here.
RunRecord execute_run(const RunSpec& spec, std::uint64_t base_seed,
                      const RunContext& context);

/// What a monitored sweep did, beyond the records themselves.
struct SweepOutcome {
  /// One record per grid cell, ordered by grid position.  Completed cells
  /// carry metrics; quarantined cells carry `failure` and no metrics;
  /// cells skipped by a drain keep run_id == -1 (the sweep is then
  /// `interrupted` and the artifacts are not final).
  std::vector<RunRecord> records;
  /// Cells actually executed (at least one attempt ran).
  std::int64_t executed = 0;
  /// Cells re-used from the resume replay without executing.
  std::int64_t resumed = 0;
  /// Cells that exhausted their retry budget.
  std::int64_t quarantined = 0;
  /// Attempts beyond each cell's first (sum over cells).
  std::int64_t retries = 0;
  /// Attempts cancelled by the watchdog deadline.
  std::int64_t timeouts = 0;
  /// Cells never started because a drain/abort arrived first.
  std::int64_t skipped = 0;
  /// True when a drain or abort token fired during the sweep.
  bool interrupted = false;
};

/// Thread-pool executor for RunSpec grids.
class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig config) : config_(std::move(config)) {}

  /// Runs every spec and returns records ordered by grid position
  /// (records[i].run_id == i).  An empty grid is a no-op returning {}.
  /// The first exception thrown by any run propagates; remaining runs
  /// still execute.  Ignores config.robustness — this is the legacy
  /// fail-fast path benches and tests pin.
  std::vector<RunRecord> run(const std::vector<RunSpec>& specs) const;

  /// The durable path: journaling, resume, watchdog deadlines, retry with
  /// backoff, quarantine, and drain/abort handling per
  /// config.robustness.  Run exceptions never propagate — a cell that
  /// exhausts its budget is quarantined and the sweep continues.  With a
  /// default-constructed RobustnessConfig the returned records are
  /// byte-identical to run()'s on a grid where no run throws.
  SweepOutcome run_monitored(const std::vector<RunSpec>& specs) const;

 private:
  SweepConfig config_;
};

}  // namespace abg::exp
