#include "exp/watchdog.hpp"

#include <algorithm>

namespace abg::exp {

double backoff_seconds(double base, int attempt, double cap) {
  double delay = base;
  for (int i = 0; i < attempt && delay < cap; ++i) {
    delay *= 2.0;
  }
  return std::min(delay, cap);
}

void Watchdog::Lease::release() {
  if (owner_ != nullptr) {
    owner_->unwatch(id_);
    owner_ = nullptr;
  }
}

Watchdog::Watchdog(Config config) : config_(config) {
  monitor_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  monitor_.join();
}

Watchdog::Lease Watchdog::watch(util::CancelToken* token) {
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    Entry entry;
    entry.token = token;
    entry.deadline =
        config_.run_timeout_seconds > 0.0
            ? std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          config_.run_timeout_seconds))
            : std::chrono::steady_clock::time_point::max();
    entries_.emplace(id, entry);
  }
  cv_.notify_all();
  return Lease(this, id);
}

void Watchdog::unwatch(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(id);
}

void Watchdog::loop() {
  // The abort token is signal-set, not cv-notified, so the monitor never
  // sleeps longer than this between polls.
  constexpr auto kPollInterval = std::chrono::milliseconds(20);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    auto wake = std::chrono::steady_clock::now() + kPollInterval;
    for (const auto& [id, entry] : entries_) {
      wake = std::min(wake, entry.deadline);
    }
    cv_.wait_until(lock, wake, [this] { return stop_; });
    if (stop_) {
      return;
    }
    const bool aborted = config_.abort != nullptr && config_.abort->cancelled();
    const auto now = std::chrono::steady_clock::now();
    for (auto& [id, entry] : entries_) {
      if (aborted) {
        entry.token->cancel(util::CancelCause::kShutdown);
      } else if (now >= entry.deadline) {
        entry.token->cancel(util::CancelCause::kTimeout);
      }
    }
  }
}

}  // namespace abg::exp
