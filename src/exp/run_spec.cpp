#include "exp/run_spec.hpp"

#include <stdexcept>

namespace abg::exp {

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kAbg:
      return "abg";
    case SchedulerKind::kAGreedy:
      return "a-greedy";
    case SchedulerKind::kAbgAuto:
      return "abg-auto";
    case SchedulerKind::kStatic:
      return "static";
  }
  throw std::invalid_argument("unknown SchedulerKind");
}

std::string to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kJobSet:
      return "job-set";
    case WorkloadKind::kForkJoin:
      return "fork-join";
    case WorkloadKind::kSquareWave:
      return "square-wave";
    case WorkloadKind::kScenario:
      return "scenario";
  }
  throw std::invalid_argument("unknown WorkloadKind");
}

std::string to_string(AllocatorKind kind) {
  switch (kind) {
    case AllocatorKind::kDefault:
      return "deq";
    case AllocatorKind::kRoundRobin:
      return "rr";
    case AllocatorKind::kHesrpt:
      return "hesrpt";
  }
  throw std::invalid_argument("unknown AllocatorKind");
}

AllocatorKind allocator_kind_from_name(const std::string& name) {
  if (name == "deq" || name == "default") {
    return AllocatorKind::kDefault;
  }
  if (name == "rr" || name == "round-robin") {
    return AllocatorKind::kRoundRobin;
  }
  if (name == "hesrpt") {
    return AllocatorKind::kHesrpt;
  }
  throw std::invalid_argument("unknown allocator '" + name +
                              "' (expected deq, rr, hesrpt)");
}

std::string to_string(FaultScenario scenario) {
  switch (scenario) {
    case FaultScenario::kNone:
      return "none";
    case FaultScenario::kStep:
      return "step";
    case FaultScenario::kImpulse:
      return "impulse";
    case FaultScenario::kPoisson:
      return "poisson";
    case FaultScenario::kCrash:
      return "crash";
  }
  throw std::invalid_argument("unknown FaultScenario");
}

std::string to_string(ReleaseKind kind) {
  switch (kind) {
    case ReleaseKind::kBatched:
      return "batched";
    case ReleaseKind::kStaggered:
      return "staggered";
    case ReleaseKind::kPoisson:
      return "poisson";
  }
  throw std::invalid_argument("unknown ReleaseKind");
}

SchedulerKind scheduler_kind_from_name(const std::string& name) {
  if (name == "abg") {
    return SchedulerKind::kAbg;
  }
  if (name == "a-greedy" || name == "agreedy") {
    return SchedulerKind::kAGreedy;
  }
  if (name == "abg-auto") {
    return SchedulerKind::kAbgAuto;
  }
  if (name == "static") {
    return SchedulerKind::kStatic;
  }
  throw std::invalid_argument("unknown scheduler '" + name +
                              "' (expected abg, a-greedy, abg-auto, static)");
}

WorkloadKind workload_kind_from_name(const std::string& name) {
  if (name == "job-set" || name == "job_set") {
    return WorkloadKind::kJobSet;
  }
  if (name == "fork-join" || name == "fork_join") {
    return WorkloadKind::kForkJoin;
  }
  if (name == "square-wave" || name == "square_wave") {
    return WorkloadKind::kSquareWave;
  }
  if (name == "scenario") {
    return WorkloadKind::kScenario;
  }
  throw std::invalid_argument(
      "unknown workload '" + name +
      "' (expected job-set, fork-join, square-wave, scenario)");
}

FaultScenario fault_scenario_from_name(const std::string& name) {
  if (name == "none") {
    return FaultScenario::kNone;
  }
  if (name == "step") {
    return FaultScenario::kStep;
  }
  if (name == "impulse") {
    return FaultScenario::kImpulse;
  }
  if (name == "poisson") {
    return FaultScenario::kPoisson;
  }
  if (name == "crash") {
    return FaultScenario::kCrash;
  }
  throw std::invalid_argument(
      "unknown fault scenario '" + name +
      "' (expected none, step, impulse, poisson, crash)");
}

ReleaseKind release_kind_from_name(const std::string& name) {
  if (name == "batched") {
    return ReleaseKind::kBatched;
  }
  if (name == "staggered") {
    return ReleaseKind::kStaggered;
  }
  if (name == "poisson") {
    return ReleaseKind::kPoisson;
  }
  throw std::invalid_argument("unknown release schedule '" + name +
                              "' (expected batched, staggered, poisson)");
}

core::SchedulerSpec make_scheduler(SchedulerKind kind,
                                   const SchedulerParams& params) {
  switch (kind) {
    case SchedulerKind::kAbg:
      return core::abg_spec(
          core::AbgConfig{.convergence_rate = params.convergence_rate});
    case SchedulerKind::kAGreedy:
      return core::a_greedy_spec(
          sched::AGreedyConfig{.utilization = params.utilization,
                               .responsiveness = params.responsiveness});
    case SchedulerKind::kAbgAuto:
      return core::abg_auto_spec();
    case SchedulerKind::kStatic:
      return core::static_spec(params.static_processors);
  }
  throw std::invalid_argument("unknown SchedulerKind");
}

}  // namespace abg::exp
