// Crash-safe run journal for sweep execution.
//
// The journal is an append-only JSONL file recording the lifecycle of
// every cell of a sweep grid: a header naming the grid (base seed, cell
// count, grid digest), then one line per event —
//
//   {"kind":"journal","base_seed":...,"cells":N,"grid_digest":"<hex>"}
//   {"kind":"start","run_id":i,"spec":"<hex>","attempt":k}
//   {"kind":"done","run_id":i,"spec":"<hex>","record":{...}}
//   {"kind":"fail","run_id":i,"spec":"<hex>","attempt":k,
//    "cause":"timeout"|"error","error":"..."}
//   {"kind":"quarantine","run_id":i,"spec":"<hex>","attempts":k,
//    "cause":"..."}
//
// Each line is written and flushed under a lock, so after a crash the
// file is a valid JSONL prefix plus at most one truncated trailing line.
// load_journal() tolerates exactly that: the torn tail is ignored, every
// complete line replays.
//
// "done" lines embed the full RunRecord JSON (record_to_json), which is
// what makes `--resume` byte-exact: a resumed sweep re-emits recorded
// cells through the same serializer that wrote them, and util::Json's
// shortest-round-trip doubles guarantee parse → re-emit identity.
//
// Digests are FNV-1a 64 over a canonical serialization of the spec
// (every result-determining field; observability and thread-count knobs
// excluded).  They guard resume against grids that drifted between
// invocations: a recorded cell is only skipped when its digest still
// matches the spec at the same grid position.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "exp/run_spec.hpp"
#include "exp/runner.hpp"

namespace abg::exp {

/// FNV-1a 64 digest of every result-determining field of a spec.
/// Excludes obs hooks, debug hooks and hier_threads (none of them can
/// change the record).
std::uint64_t spec_digest(const RunSpec& spec);

/// Digest of a whole grid: base seed, cell count and every cell digest in
/// position order.  Two invocations with equal grid digests will execute
/// the identical sweep.
std::uint64_t grid_digest(const std::vector<RunSpec>& specs,
                          std::uint64_t base_seed);

/// Fixed-width lower-case hex rendering used for digests in journal lines.
std::string digest_to_hex(std::uint64_t digest);

/// Append-only journal writer.  Thread-safe: every event is rendered to
/// one line and appended + flushed under an internal lock.
class RunJournal {
 public:
  /// Opens `path` for appending (the file is created if absent) and, when
  /// the file was empty, writes the header line.  Throws
  /// std::runtime_error naming the path when the file cannot be opened.
  RunJournal(const std::string& path, std::uint64_t base_seed,
             std::size_t cells, std::uint64_t grid);

  /// A cell attempt began.
  void record_start(std::int64_t run_id, std::uint64_t spec, int attempt);

  /// A cell completed; `record` is embedded verbatim for resume.
  void record_done(std::int64_t run_id, std::uint64_t spec,
                   const RunRecord& record);

  /// A cell attempt failed with `cause` ("timeout" | "error") and will be
  /// retried or quarantined.
  void record_failure(std::int64_t run_id, std::uint64_t spec, int attempt,
                      const std::string& cause, const std::string& error);

  /// A cell exhausted its retry budget and is excluded from the sweep.
  void record_quarantine(std::int64_t run_id, std::uint64_t spec,
                         int attempts, const std::string& cause);

 private:
  void append(const std::string& line);

  std::mutex mutex_;
  std::ofstream out_;
  std::string path_;
};

/// Replayed journal state used by `--resume`.
struct JournalReplay {
  std::uint64_t base_seed = 0;
  std::size_t cells = 0;
  std::uint64_t grid = 0;
  /// Completed cells: run_id -> (spec digest, recorded result).
  std::map<std::int64_t, std::pair<std::uint64_t, RunRecord>> completed;
  /// Cells whose last event was a quarantine (re-executed on resume, on
  /// the theory that the failure may have been transient).
  std::map<std::int64_t, std::string> quarantined;

  /// The recorded result for a cell, or nullptr when the cell is not
  /// completed or its digest no longer matches `spec`.
  const RunRecord* completed_record(std::int64_t run_id,
                                    std::uint64_t spec) const;
};

/// Parses a journal file.  A truncated trailing line (torn by a crash) is
/// ignored; any other malformed line throws std::runtime_error with the
/// line number.  Throws std::runtime_error when the file cannot be read
/// or has no header.
JournalReplay load_journal(const std::string& path);

}  // namespace abg::exp
