#include "exp/journal.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "exp/result_sink.hpp"
#include "util/json.hpp"

namespace abg::exp {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Incremental FNV-1a over a canonical token stream.  Every token is
/// rendered to text and terminated with an out-of-band separator, so
/// adjacent fields cannot alias ("ab"+"c" != "a"+"bc").
class Digest {
 public:
  void feed(const std::string& token) {
    for (const char c : token) {
      mix(static_cast<unsigned char>(c));
    }
    mix(0x1F);  // unit separator — never appears in rendered tokens
  }

  void feed(std::int64_t value) { feed(std::to_string(value)); }

  void feed(double value) { feed(util::Json::format_number(value)); }

  std::uint64_t value() const { return hash_; }

 private:
  void mix(unsigned char byte) {
    hash_ ^= byte;
    hash_ *= kFnvPrime;
  }

  std::uint64_t hash_ = kFnvOffset;
};

}  // namespace

std::uint64_t spec_digest(const RunSpec& spec) {
  Digest d;
  d.feed(to_string(spec.scheduler));
  d.feed(spec.scheduler_params.convergence_rate);
  d.feed(spec.scheduler_params.utilization);
  d.feed(spec.scheduler_params.responsiveness);
  d.feed(static_cast<std::int64_t>(spec.scheduler_params.static_processors));
  d.feed(to_string(spec.workload.kind));
  d.feed(spec.workload.load);
  d.feed(spec.workload.transition_factor);
  d.feed(static_cast<std::int64_t>(spec.workload.jobs));
  d.feed(static_cast<std::int64_t>(spec.workload.levels));
  d.feed(static_cast<std::int64_t>(spec.machine.processors));
  d.feed(static_cast<std::int64_t>(spec.machine.quantum_length));
  d.feed(to_string(spec.faults.scenario));
  d.feed(spec.faults.fraction);
  d.feed(static_cast<std::int64_t>(spec.faults.crash_job));
  d.feed(static_cast<std::int64_t>(spec.faults.crashes));
  d.feed(static_cast<std::int64_t>(spec.faults.scratch ? 1 : 0));
  d.feed(static_cast<std::int64_t>(spec.allocator));
  d.feed(std::string(sim::to_string(spec.engine)));
  d.feed(static_cast<std::int64_t>(spec.hier_groups));
  d.feed(spec.hier_alloc);
  // The cluster axis feeds only when engaged so journals written before
  // the axis existed keep resumable digests.  cluster_threads is excluded
  // like hier_threads: it never changes what a run computes.
  if (spec.cluster_machines != 0) {
    d.feed(static_cast<std::int64_t>(spec.cluster_machines));
    d.feed(spec.router);
    d.feed(static_cast<std::int64_t>(spec.migration_period));
  }
  d.feed(to_string(spec.workload.release));
  d.feed(spec.workload.release_gap);
  d.feed(open::to_string(spec.open.arrival));
  d.feed(spec.open.jobs_total);
  d.feed(spec.open.trace_path);
  d.feed(spec.workload.scenario_path);
  d.feed(static_cast<std::int64_t>(spec.seed_index));
  d.feed(spec.group);
  return d.value();
}

std::uint64_t grid_digest(const std::vector<RunSpec>& specs,
                          std::uint64_t base_seed) {
  Digest d;
  d.feed(static_cast<std::int64_t>(base_seed));
  d.feed(static_cast<std::int64_t>(specs.size()));
  for (const RunSpec& spec : specs) {
    d.feed(digest_to_hex(spec_digest(spec)));
  }
  return d.value();
}

std::string digest_to_hex(std::uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

RunJournal::RunJournal(const std::string& path, std::uint64_t base_seed,
                       std::size_t cells, std::uint64_t grid)
    : path_(path) {
  // Peek at the current size first: the header is written exactly once,
  // so resuming re-opens the same file and keeps appending after it.
  std::ifstream probe(path, std::ios::binary | std::ios::ate);
  const bool empty = !probe || probe.tellg() <= 0;
  probe.close();
  out_.open(path, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("journal path not writable: " + path);
  }
  if (empty) {
    util::Json header = util::Json::object();
    header.set("kind", util::Json::string("journal"))
        .set("base_seed",
             util::Json::integer(static_cast<std::int64_t>(base_seed)))
        .set("cells",
             util::Json::integer(static_cast<std::int64_t>(cells)))
        .set("grid_digest", util::Json::string(digest_to_hex(grid)));
    append(header.dump());
  }
}

void RunJournal::record_start(std::int64_t run_id, std::uint64_t spec,
                              int attempt) {
  util::Json j = util::Json::object();
  j.set("kind", util::Json::string("start"))
      .set("run_id", util::Json::integer(run_id))
      .set("spec", util::Json::string(digest_to_hex(spec)))
      .set("attempt", util::Json::integer(attempt));
  append(j.dump());
}

void RunJournal::record_done(std::int64_t run_id, std::uint64_t spec,
                             const RunRecord& record) {
  util::Json j = util::Json::object();
  j.set("kind", util::Json::string("done"))
      .set("run_id", util::Json::integer(run_id))
      .set("spec", util::Json::string(digest_to_hex(spec)))
      .set("record", record_to_json(record));
  append(j.dump());
}

void RunJournal::record_failure(std::int64_t run_id, std::uint64_t spec,
                                int attempt, const std::string& cause,
                                const std::string& error) {
  util::Json j = util::Json::object();
  j.set("kind", util::Json::string("fail"))
      .set("run_id", util::Json::integer(run_id))
      .set("spec", util::Json::string(digest_to_hex(spec)))
      .set("attempt", util::Json::integer(attempt))
      .set("cause", util::Json::string(cause))
      .set("error", util::Json::string(error));
  append(j.dump());
}

void RunJournal::record_quarantine(std::int64_t run_id, std::uint64_t spec,
                                   int attempts, const std::string& cause) {
  util::Json j = util::Json::object();
  j.set("kind", util::Json::string("quarantine"))
      .set("run_id", util::Json::integer(run_id))
      .set("spec", util::Json::string(digest_to_hex(spec)))
      .set("attempts", util::Json::integer(attempts))
      .set("cause", util::Json::string(cause));
  append(j.dump());
}

void RunJournal::append(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line << '\n';
  out_.flush();
  if (!out_) {
    throw std::runtime_error("journal write failed: " + path_);
  }
}

const RunRecord* JournalReplay::completed_record(std::int64_t run_id,
                                                 std::uint64_t spec) const {
  const auto it = completed.find(run_id);
  if (it == completed.end() || it->second.first != spec) {
    return nullptr;
  }
  return &it->second.second;
}

JournalReplay load_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("journal not readable: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  JournalReplay replay;
  bool saw_header = false;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const bool torn = eol == std::string::npos;
    const std::string line =
        text.substr(pos, torn ? std::string::npos : eol - pos);
    pos = torn ? text.size() : eol + 1;
    ++line_no;
    if (line.empty()) {
      continue;
    }
    util::Json j = util::Json::null();
    try {
      j = util::Json::parse(line);
    } catch (const std::exception& e) {
      if (torn) {
        break;  // the crash-torn tail: ignore and stop
      }
      throw std::runtime_error("journal " + path + " line " +
                               std::to_string(line_no) + ": " + e.what());
    }
    const util::Json* kind = j.find("kind");
    if (kind == nullptr || !kind->is_string()) {
      if (torn) {
        break;
      }
      throw std::runtime_error("journal " + path + " line " +
                               std::to_string(line_no) + ": missing kind");
    }
    try {
      if (kind->as_string() == "journal") {
        replay.base_seed =
            static_cast<std::uint64_t>(j.at("base_seed").as_integer());
        replay.cells = static_cast<std::size_t>(j.at("cells").as_integer());
        replay.grid = std::stoull(j.at("grid_digest").as_string(), nullptr,
                                  16);
        saw_header = true;
      } else if (kind->as_string() == "done") {
        const std::int64_t run_id = j.at("run_id").as_integer();
        const std::uint64_t spec =
            std::stoull(j.at("spec").as_string(), nullptr, 16);
        replay.completed[run_id] = {spec,
                                    record_from_json(j.at("record"))};
        replay.quarantined.erase(run_id);
      } else if (kind->as_string() == "quarantine") {
        const std::int64_t run_id = j.at("run_id").as_integer();
        if (!replay.completed.contains(run_id)) {
          replay.quarantined[run_id] = j.at("cause").as_string();
        }
      }
      // "start" / "fail" lines are progress breadcrumbs: a cell with no
      // later "done" simply re-executes on resume.
    } catch (const std::exception& e) {
      if (torn) {
        break;
      }
      throw std::runtime_error("journal " + path + " line " +
                               std::to_string(line_no) + ": " + e.what());
    }
  }
  if (!saw_header) {
    throw std::runtime_error("journal " + path + ": no header line");
  }
  return replay;
}

}  // namespace abg::exp
