#include "exp/result_sink.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "util/bootstrap.hpp"
#include "util/rng.hpp"

namespace abg::exp {

void ResultSink::add(RunRecord record) {
  records_.push_back(std::move(record));
}

void ResultSink::add_all(std::vector<RunRecord> records) {
  for (RunRecord& record : records) {
    records_.push_back(std::move(record));
  }
}

util::Json record_to_json(const RunRecord& record) {
  util::Json metrics = util::Json::object();
  for (const auto& [name, value] : record.metrics) {
    metrics.set(name, util::Json::number(value));
  }
  util::Json j = util::Json::object();
  j.set("run_id", util::Json::integer(record.run_id))
      .set("group", util::Json::string(record.group))
      .set("scheduler", util::Json::string(record.scheduler))
      .set("workload", util::Json::string(record.workload))
      .set("fault", util::Json::string(record.fault));
  // The default engine is omitted so artifacts produced before the engine
  // axis existed (and all default-engine sweeps) stay byte-identical.
  if (!record.engine.empty() && record.engine != "sync") {
    j.set("engine", util::Json::string(record.engine));
  }
  // Same rule for the hier axis: flat runs (hier_groups == 0) serialize
  // exactly as they did before the axis existed.
  if (record.hier_groups > 0) {
    j.set("hier_groups", util::Json::integer(record.hier_groups));
    if (!record.hier_alloc.empty()) {
      j.set("hier_alloc", util::Json::string(record.hier_alloc));
    }
  }
  j.set("seed", util::Json::integer(static_cast<std::int64_t>(record.seed)))
      .set("metrics", std::move(metrics));
  return j;
}

void ResultSink::write_jsonl(std::ostream& os) const {
  std::vector<const RunRecord*> ordered;
  ordered.reserve(records_.size());
  for (const RunRecord& record : records_) {
    ordered.push_back(&record);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const RunRecord* a, const RunRecord* b) {
                     return a->run_id < b->run_id;
                   });
  for (const RunRecord* record : ordered) {
    record_to_json(*record).write(os);
    os << '\n';
  }
}

util::Json ResultSink::summary() const {
  // Group by (group, scheduler, engine) in order of first appearance.
  struct Bucket {
    const RunRecord* exemplar = nullptr;
    std::vector<const RunRecord*> members;
  };
  std::vector<std::pair<std::tuple<std::string, std::string, std::string>,
                        Bucket>>
      buckets;
  for (const RunRecord& record : records_) {
    const auto key =
        std::make_tuple(record.group, record.scheduler, record.engine);
    auto it = std::find_if(buckets.begin(), buckets.end(),
                           [&](const auto& b) { return b.first == key; });
    if (it == buckets.end()) {
      buckets.push_back({key, Bucket{&record, {}}});
      it = std::prev(buckets.end());
    }
    it->second.members.push_back(&record);
  }

  util::Json groups = util::Json::array();
  std::uint64_t ordinal = 0;
  for (const auto& [key, bucket] : buckets) {
    util::Json metrics = util::Json::object();
    // The exemplar fixes the metric set and its order; records missing a
    // metric simply do not contribute a sample to it.
    for (const auto& [name, unused] : bucket.exemplar->metrics) {
      (void)unused;
      std::vector<double> samples;
      samples.reserve(bucket.members.size());
      for (const RunRecord* member : bucket.members) {
        if (member->has_metric(name)) {
          samples.push_back(member->metric(name));
        }
      }
      if (samples.empty()) {
        continue;
      }
      const util::ConfidenceInterval ci = util::bootstrap_mean(
          samples, util::Rng::derive_seed(base_seed_, ordinal));
      metrics.set(name, util::Json::object()
                            .set("mean", util::Json::number(ci.point))
                            .set("ci_lower", util::Json::number(ci.lower))
                            .set("ci_upper", util::Json::number(ci.upper))
                            .set("samples", util::Json::integer(
                                                static_cast<std::int64_t>(
                                                    samples.size()))));
    }
    util::Json group_obj = util::Json::object();
    group_obj.set("group", util::Json::string(std::get<0>(key)))
        .set("scheduler", util::Json::string(std::get<1>(key)));
    // Same omission rule as record_to_json: the default engine keeps
    // summaries byte-identical to pre-engine-axis artifacts.
    if (!std::get<2>(key).empty() && std::get<2>(key) != "sync") {
      group_obj.set("engine", util::Json::string(std::get<2>(key)));
    }
    group_obj
        .set("runs", util::Json::integer(
                         static_cast<std::int64_t>(bucket.members.size())))
        .set("metrics", std::move(metrics));
    groups.push(std::move(group_obj));
    ++ordinal;
  }

  util::Json j = util::Json::object();
  j.set("benchmark", util::Json::string(benchmark_))
      .set("base_seed",
           util::Json::integer(static_cast<std::int64_t>(base_seed_)))
      .set("total_runs", util::Json::integer(
                             static_cast<std::int64_t>(records_.size())))
      .set("groups", std::move(groups));
  return j;
}

void ResultSink::write_summary(std::ostream& os) const {
  summary().write(os);
  os << '\n';
}

}  // namespace abg::exp
