#include "exp/result_sink.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "util/atomic_file.hpp"
#include "util/bootstrap.hpp"
#include "util/rng.hpp"

namespace abg::exp {

void ResultSink::add(RunRecord record) {
  records_.push_back(std::move(record));
}

void ResultSink::add_all(std::vector<RunRecord> records) {
  for (RunRecord& record : records) {
    records_.push_back(std::move(record));
  }
}

util::Json record_to_json(const RunRecord& record) {
  util::Json metrics = util::Json::object();
  for (const auto& [name, value] : record.metrics) {
    metrics.set(name, util::Json::number(value));
  }
  util::Json j = util::Json::object();
  j.set("run_id", util::Json::integer(record.run_id))
      .set("group", util::Json::string(record.group))
      .set("scheduler", util::Json::string(record.scheduler))
      .set("workload", util::Json::string(record.workload))
      .set("fault", util::Json::string(record.fault));
  // The default engine is omitted so artifacts produced before the engine
  // axis existed (and all default-engine sweeps) stay byte-identical.
  if (!record.engine.empty() && record.engine != "sync") {
    j.set("engine", util::Json::string(record.engine));
  }
  // Same rule for the hier axis: flat runs (hier_groups == 0) serialize
  // exactly as they did before the axis existed.
  if (record.hier_groups > 0) {
    j.set("hier_groups", util::Json::integer(record.hier_groups));
    if (!record.hier_alloc.empty()) {
      j.set("hier_alloc", util::Json::string(record.hier_alloc));
    }
  }
  // Same rule for the cluster axis: flat runs (cluster_machines == 0)
  // serialize exactly as they did before the axis existed.
  if (record.cluster_machines > 0) {
    j.set("cluster_machines", util::Json::integer(record.cluster_machines));
    if (!record.router.empty()) {
      j.set("router", util::Json::string(record.router));
    }
  }
  // Same rule for the open axis: closed runs (empty arrival) serialize
  // exactly as they did before the axis existed.
  if (!record.arrival.empty()) {
    j.set("arrival", util::Json::string(record.arrival));
  }
  // Only quarantined cells carry a failure; completed records serialize
  // exactly as before the robustness layer existed.
  if (!record.failure.empty()) {
    j.set("failure", util::Json::string(record.failure));
  }
  j.set("seed", util::Json::integer(static_cast<std::int64_t>(record.seed)))
      .set("metrics", std::move(metrics));
  return j;
}

RunRecord record_from_json(const util::Json& json) {
  RunRecord record;
  record.run_id = json.at("run_id").as_integer();
  record.group = json.at("group").as_string();
  record.scheduler = json.at("scheduler").as_string();
  record.workload = json.at("workload").as_string();
  record.fault = json.at("fault").as_string();
  // Restore the serializer's omission defaults so a round-tripped record
  // is indistinguishable from a freshly executed one.
  const util::Json* engine = json.find("engine");
  record.engine = engine != nullptr ? engine->as_string() : "sync";
  const util::Json* hier_groups = json.find("hier_groups");
  record.hier_groups =
      hier_groups != nullptr ? static_cast<int>(hier_groups->as_integer())
                             : 0;
  const util::Json* hier_alloc = json.find("hier_alloc");
  record.hier_alloc = hier_alloc != nullptr ? hier_alloc->as_string() : "";
  const util::Json* cluster_machines = json.find("cluster_machines");
  record.cluster_machines =
      cluster_machines != nullptr
          ? static_cast<int>(cluster_machines->as_integer())
          : 0;
  const util::Json* router = json.find("router");
  record.router = router != nullptr ? router->as_string() : "";
  const util::Json* arrival = json.find("arrival");
  record.arrival = arrival != nullptr ? arrival->as_string() : "";
  const util::Json* failure = json.find("failure");
  record.failure = failure != nullptr ? failure->as_string() : "";
  record.seed = static_cast<std::uint64_t>(json.at("seed").as_integer());
  for (const auto& [name, value] : json.at("metrics").members()) {
    record.metrics.emplace_back(name, value.as_number());
  }
  return record;
}

void ResultSink::write_jsonl(std::ostream& os) const {
  std::vector<const RunRecord*> ordered;
  ordered.reserve(records_.size());
  for (const RunRecord& record : records_) {
    ordered.push_back(&record);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const RunRecord* a, const RunRecord* b) {
                     return a->run_id < b->run_id;
                   });
  for (const RunRecord* record : ordered) {
    record_to_json(*record).write(os);
    os << '\n';
  }
}

util::Json ResultSink::summary() const {
  // Group by (group, scheduler, engine) in order of first appearance.
  struct Bucket {
    const RunRecord* exemplar = nullptr;
    std::vector<const RunRecord*> members;
  };
  std::vector<std::pair<std::tuple<std::string, std::string, std::string>,
                        Bucket>>
      buckets;
  std::vector<const RunRecord*> failed;
  std::size_t completed = 0;
  for (const RunRecord& record : records_) {
    if (!record.failure.empty()) {
      failed.push_back(&record);
      continue;
    }
    ++completed;
    const auto key =
        std::make_tuple(record.group, record.scheduler, record.engine);
    auto it = std::find_if(buckets.begin(), buckets.end(),
                           [&](const auto& b) { return b.first == key; });
    if (it == buckets.end()) {
      buckets.push_back({key, Bucket{&record, {}}});
      it = std::prev(buckets.end());
    }
    it->second.members.push_back(&record);
  }

  util::Json groups = util::Json::array();
  std::uint64_t ordinal = 0;
  for (const auto& [key, bucket] : buckets) {
    util::Json metrics = util::Json::object();
    // The exemplar fixes the metric set and its order; records missing a
    // metric simply do not contribute a sample to it.
    for (const auto& [name, unused] : bucket.exemplar->metrics) {
      (void)unused;
      std::vector<double> samples;
      samples.reserve(bucket.members.size());
      for (const RunRecord* member : bucket.members) {
        if (member->has_metric(name)) {
          samples.push_back(member->metric(name));
        }
      }
      if (samples.empty()) {
        continue;
      }
      const util::ConfidenceInterval ci = util::bootstrap_mean(
          samples, util::Rng::derive_seed(base_seed_, ordinal));
      metrics.set(name, util::Json::object()
                            .set("mean", util::Json::number(ci.point))
                            .set("ci_lower", util::Json::number(ci.lower))
                            .set("ci_upper", util::Json::number(ci.upper))
                            .set("samples", util::Json::integer(
                                                static_cast<std::int64_t>(
                                                    samples.size()))));
    }
    util::Json group_obj = util::Json::object();
    group_obj.set("group", util::Json::string(std::get<0>(key)))
        .set("scheduler", util::Json::string(std::get<1>(key)));
    // Same omission rule as record_to_json: the default engine keeps
    // summaries byte-identical to pre-engine-axis artifacts.
    if (!std::get<2>(key).empty() && std::get<2>(key) != "sync") {
      group_obj.set("engine", util::Json::string(std::get<2>(key)));
    }
    group_obj
        .set("runs", util::Json::integer(
                         static_cast<std::int64_t>(bucket.members.size())))
        .set("metrics", std::move(metrics));
    groups.push(std::move(group_obj));
    ++ordinal;
  }

  util::Json j = util::Json::object();
  j.set("benchmark", util::Json::string(benchmark_))
      .set("base_seed",
           util::Json::integer(static_cast<std::int64_t>(base_seed_)))
      .set("total_runs",
           util::Json::integer(static_cast<std::int64_t>(completed)));
  // The degraded-coverage report: present only when a cell was actually
  // quarantined, so clean sweeps keep their pre-robustness byte layout.
  if (!failed.empty()) {
    std::stable_sort(failed.begin(), failed.end(),
                     [](const RunRecord* a, const RunRecord* b) {
                       return a->run_id < b->run_id;
                     });
    util::Json quarantined = util::Json::array();
    for (const RunRecord* record : failed) {
      quarantined.push(util::Json::object()
                           .set("run_id", util::Json::integer(record->run_id))
                           .set("group", util::Json::string(record->group))
                           .set("scheduler",
                                util::Json::string(record->scheduler))
                           .set("failure",
                                util::Json::string(record->failure)));
    }
    j.set("quarantined_runs",
          util::Json::integer(static_cast<std::int64_t>(failed.size())))
        .set("quarantined", std::move(quarantined));
  }
  j.set("groups", std::move(groups));
  return j;
}

void ResultSink::write_summary(std::ostream& os) const {
  summary().write(os);
  os << '\n';
}

void ResultSink::write_jsonl_file(const std::string& path) const {
  util::write_file_atomic(path,
                          [this](std::ostream& os) { write_jsonl(os); });
}

void ResultSink::write_summary_file(const std::string& path) const {
  util::write_file_atomic(path,
                          [this](std::ostream& os) { write_summary(os); });
}

}  // namespace abg::exp
