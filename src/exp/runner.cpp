#include "exp/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "alloc/hesrpt.hpp"
#include "alloc/round_robin.hpp"
#include "exp/journal.hpp"
#include "exp/thread_pool.hpp"
#include "exp/watchdog.hpp"
#include "fault/fault_plan.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics_sink.hpp"
#include "fault/resilience.hpp"
#include "metrics/lower_bounds.hpp"
#include "scenario/generators.hpp"
#include "scenario/library.hpp"
#include "sim/validate.hpp"
#include "util/rng.hpp"
#include "workload/arrivals.hpp"
#include "workload/fork_join.hpp"
#include "workload/job_set.hpp"
#include "workload/profiles.hpp"

namespace abg::exp {

double RunRecord::metric(const std::string& name) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) {
      return value;
    }
  }
  throw std::out_of_range("RunRecord: no metric '" + name + "'");
}

bool RunRecord::has_metric(const std::string& name) const {
  return std::any_of(metrics.begin(), metrics.end(),
                     [&](const auto& kv) { return kv.first == name; });
}

std::function<void(const Progress&)> stderr_progress() {
  return [](const Progress& p) {
    std::fprintf(
        stderr,
        "\r[sweep] %lld/%lld runs  %.1f runs/s  elapsed %.0fs  ETA %.0fs   ",
        static_cast<long long>(p.completed),
        static_cast<long long>(p.total), p.runs_per_second,
        p.elapsed_seconds, p.eta_seconds);
    if (p.completed == p.total) {
      std::fprintf(stderr, "\n");
    }
  };
}

namespace {

/// Materializes the spec's workload from `rng` and returns submissions.
std::vector<sim::JobSubmission> build_workload(const RunSpec& spec,
                                               util::Rng& rng) {
  std::vector<sim::JobSubmission> subs;
  switch (spec.workload.kind) {
    case WorkloadKind::kJobSet: {
      workload::JobSetSpec set_spec;
      set_spec.load = spec.workload.load;
      set_spec.processors = spec.machine.processors;
      set_spec.min_phase_levels = spec.machine.quantum_length / 2;
      set_spec.max_phase_levels = 2 * spec.machine.quantum_length;
      auto jobs = workload::make_job_set(rng, set_spec);
      subs.reserve(jobs.size());
      for (auto& g : jobs) {
        sim::JobSubmission s;
        s.job = std::move(g.job);
        subs.push_back(std::move(s));
      }
      break;
    }
    case WorkloadKind::kForkJoin: {
      if (spec.workload.jobs < 1) {
        throw std::invalid_argument(
            "RunSpec: fork-join workload needs jobs >= 1");
      }
      subs.reserve(static_cast<std::size_t>(spec.workload.jobs));
      for (int j = 0; j < spec.workload.jobs; ++j) {
        sim::JobSubmission s;
        s.job = workload::make_fork_join_job(
            rng, workload::figure5_spec(spec.workload.transition_factor,
                                        spec.machine.quantum_length));
        subs.push_back(std::move(s));
      }
      break;
    }
    case WorkloadKind::kSquareWave: {
      if (spec.workload.jobs < 1) {
        throw std::invalid_argument(
            "RunSpec: square-wave workload needs jobs >= 1");
      }
      const dag::Steps levels = std::max<dag::Steps>(8, spec.workload.levels);
      subs.reserve(static_cast<std::size_t>(spec.workload.jobs));
      for (int j = 0; j < spec.workload.jobs; ++j) {
        const auto low = static_cast<dag::TaskCount>(rng.uniform_int(1, 4));
        const auto high = static_cast<dag::TaskCount>(rng.uniform_int(8, 24));
        const dag::Steps phase = rng.uniform_int(levels / 8, levels / 3);
        sim::JobSubmission s;
        s.job = std::make_unique<dag::ProfileJob>(
            workload::square_wave_profile(low, phase, high, phase, 4));
        subs.push_back(std::move(s));
      }
      break;
    }
    case WorkloadKind::kScenario: {
      if (spec.workload.scenario_path.empty()) {
        throw std::invalid_argument(
            "RunSpec: scenario workload needs a scenario_path");
      }
      const scenario::ScenarioSpec& scenario =
          scenario::load_cached(spec.workload.scenario_path);
      // The scenario owns the release schedule, so the generic release
      // block below must not touch these submissions.
      return scenario::generate_jobs(scenario, rng, spec.machine.processors,
                                     spec.machine.quantum_length);
    }
  }
  if (subs.empty()) {
    throw std::invalid_argument("RunSpec: workload produced no jobs");
  }
  // Release schedule, drawn after job generation so the default (batched)
  // keeps the historic draw sequence of every existing spec.
  if (spec.workload.release != ReleaseKind::kBatched) {
    const double gap = spec.workload.release_gap;
    std::vector<dag::Steps> releases;
    if (spec.workload.release == ReleaseKind::kStaggered) {
      if (gap < 0.0 || gap > 9e18) {
        throw std::invalid_argument(
            "RunSpec: staggered release_gap out of range");
      }
      releases = workload::staggered_releases(subs.size(),
                                              static_cast<dag::Steps>(gap));
    } else {
      releases = workload::poisson_releases(rng, subs.size(), gap);
    }
    for (std::size_t i = 0; i < subs.size(); ++i) {
      subs[i].release_step = releases[i];
    }
  }
  return subs;
}

/// Builds the spec's fault plan, anchored on the fault-free reference run.
fault::FaultPlan build_fault_plan(const RunSpec& spec,
                                  const sim::SimResult& reference,
                                  util::Rng& fault_rng) {
  const dag::Steps mid = reference.makespan / 3;
  const dag::Steps l = spec.machine.quantum_length;
  const int affected = std::max(
      1, static_cast<int>(spec.faults.fraction *
                          static_cast<double>(spec.machine.processors)));
  switch (spec.faults.scenario) {
    case FaultScenario::kStep:
      return fault::step_failure_plan(mid, affected);
    case FaultScenario::kImpulse:
      return fault::impulse_failure_plan(mid, affected, 8 * l);
    case FaultScenario::kPoisson:
      return fault::poisson_churn_plan(
          fault_rng, reference.makespan, 1.0 / static_cast<double>(4 * l),
          6 * l, std::max(1, affected / 2));
    case FaultScenario::kCrash: {
      fault::FaultPlan plan = fault::periodic_crash_plan(
          spec.faults.crash_job, mid,
          std::max<dag::Steps>(1, reference.makespan / 4),
          spec.faults.crashes);
      plan.work_loss = spec.faults.scratch
                           ? fault::WorkLoss::kRestartFromScratch
                           : fault::WorkLoss::kCheckpointQuantum;
      return plan;
    }
    case FaultScenario::kNone:
      break;
  }
  return {};
}

/// Appends the simulation metrics shared by every run.
void append_sim_metrics(const RunSpec& spec, const sim::SimResult& result,
                        const std::vector<metrics::JobSummary>& summaries,
                        RunRecord& record) {
  std::int64_t satisfied = 0;
  std::int64_t deprived = 0;
  dag::TaskCount work = 0;
  for (const sim::JobTrace& trace : result.jobs) {
    work += trace.work;
    for (const auto& q : trace.quanta) {
      if (q.deprived()) {
        ++deprived;
      } else {
        ++satisfied;
      }
    }
  }
  const double makespan_star =
      metrics::makespan_lower_bound(summaries, spec.machine.processors);
  const double response_star =
      metrics::response_lower_bound(summaries, spec.machine.processors);

  record.metrics.emplace_back("jobs",
                              static_cast<double>(result.jobs.size()));
  record.metrics.emplace_back("makespan",
                              static_cast<double>(result.makespan));
  record.metrics.emplace_back("mean_response_time",
                              result.mean_response_time);
  record.metrics.emplace_back("total_work", static_cast<double>(work));
  record.metrics.emplace_back("total_waste",
                              static_cast<double>(result.total_waste));
  record.metrics.emplace_back("quanta", static_cast<double>(result.quanta));
  record.metrics.emplace_back("satisfied_quanta",
                              static_cast<double>(satisfied));
  record.metrics.emplace_back("deprived_quanta",
                              static_cast<double>(deprived));
  if (makespan_star > 0.0) {
    record.metrics.emplace_back(
        "makespan_over_lb",
        static_cast<double>(result.makespan) / makespan_star);
  }
  if (response_star > 0.0) {
    record.metrics.emplace_back("response_over_lb",
                                result.mean_response_time / response_star);
  }
}

/// Appends an open-system run's aggregate and percentile metrics.  Names
/// shared with the closed path (jobs, makespan, total_work, ...) keep
/// their semantics; the percentile/slowdown/queue metrics are open-only.
void append_open_metrics(const open::OpenResult& result, RunRecord& record) {
  const open::OnlineStats& stats = result.stats;
  record.metrics.emplace_back("jobs", static_cast<double>(result.completed));
  record.metrics.emplace_back("makespan",
                              static_cast<double>(result.makespan));
  record.metrics.emplace_back("mean_response_time", stats.response().mean());
  record.metrics.emplace_back("response_p50", stats.response_quantile(0.50));
  record.metrics.emplace_back("response_p95", stats.response_quantile(0.95));
  record.metrics.emplace_back("response_p99", stats.response_quantile(0.99));
  record.metrics.emplace_back("mean_slowdown", stats.slowdown().mean());
  record.metrics.emplace_back(
      "max_slowdown",
      stats.slowdown().count() > 0 ? stats.slowdown().max() : 0.0);
  record.metrics.emplace_back("slowdown_p99", stats.slowdown_quantile(0.99));
  record.metrics.emplace_back("queue_depth_mean", stats.queue_depth().mean());
  record.metrics.emplace_back("queue_depth_p95",
                              stats.queue_depth_quantile(0.95));
  record.metrics.emplace_back(
      "in_system_high_water",
      static_cast<double>(result.in_system_high_water));
  record.metrics.emplace_back("total_work",
                              static_cast<double>(result.total_work));
  record.metrics.emplace_back("total_waste",
                              static_cast<double>(result.total_waste));
  record.metrics.emplace_back("quanta", static_cast<double>(result.quanta));
  if (result.mean_gap > 0.0) {
    record.metrics.emplace_back("mean_gap", result.mean_gap);
  }
}

}  // namespace

RunRecord execute_run(const RunSpec& spec, std::uint64_t base_seed) {
  return execute_run(spec, base_seed, RunContext{});
}

RunRecord execute_run(const RunSpec& spec, std::uint64_t base_seed,
                      obs::MetricsRegistry* metrics_out) {
  RunContext context;
  context.metrics = metrics_out;
  return execute_run(spec, base_seed, context);
}

RunRecord execute_run(const RunSpec& spec, std::uint64_t base_seed,
                      const RunContext& context) {
  obs::MetricsRegistry* const metrics_out = context.metrics;
  // Failure-injection hooks (robustness fixtures only).
  if (spec.debug.fail_attempts > 0 &&
      context.attempt < spec.debug.fail_attempts) {
    throw std::runtime_error("debug: injected failure (attempt " +
                             std::to_string(context.attempt) + ")");
  }
  if (spec.debug.hang) {
    if (context.cancel == nullptr) {
      throw std::logic_error(
          "execute_run: debug.hang requires a cancellation token");
    }
    while (!context.cancel->cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    throw util::CancelledError(
        "execute_run: run cancelled (" +
            std::string(util::to_string(context.cancel->cause())) + ")",
        context.cancel->cause());
  }
  const std::uint64_t seed = util::Rng::derive_seed(base_seed,
                                                    spec.seed_index);
  RunRecord record;
  record.group = spec.group;
  record.scheduler = to_string(spec.scheduler);
  record.workload = to_string(spec.workload.kind);
  record.fault = to_string(spec.faults.scenario);
  record.engine = std::string(sim::to_string(spec.engine));
  record.hier_groups = spec.hier_groups;
  record.hier_alloc = spec.hier_alloc;
  record.cluster_machines = spec.cluster_machines;
  record.router = spec.router;
  record.seed = seed;

  // The run's private bus: the runner's metrics sink first, then any
  // caller-supplied bus from the spec.  With neither, the bus stays
  // inactive and the engine takes the observability-free path.
  obs::EventBus bus;
  std::optional<obs::MetricsSink> metrics_sink;
  if (metrics_out != nullptr) {
    metrics_sink.emplace(*metrics_out);
    bus.subscribe(&*metrics_sink);
  }
  bus.subscribe(spec.obs.event_bus);

  // Open-system axis: stream continuously arriving jobs instead of
  // simulating a closed workload.
  if (spec.open.arrival != open::ArrivalKind::kNone) {
    if (spec.faults.scenario != FaultScenario::kNone) {
      throw std::invalid_argument(
          "RunSpec: open runs do not compose with fault scenarios");
    }
    if (spec.hier_groups != 0) {
      throw std::invalid_argument(
          "RunSpec: open runs do not compose with hierarchical allocation");
    }
    if (spec.cluster_machines != 0) {
      throw std::invalid_argument(
          "RunSpec: open runs do not compose with the cluster axis");
    }
    if (spec.engine != sim::EngineKind::kSync) {
      throw std::invalid_argument(
          "RunSpec: open runs require the sync engine");
    }
    record.arrival = open::to_string(spec.open.arrival);
    open::OpenConfig open_config;
    open_config.processors = spec.machine.processors;
    open_config.quantum_length = spec.machine.quantum_length;
    open_config.jobs_total = spec.open.jobs_total;
    open_config.arrival = spec.open.arrival;
    open_config.trace_path = spec.open.trace_path;
    open_config.load = spec.workload.load;
    open_config.bus = &bus;
    open_config.cancel = context.cancel;
    open::JobFactory factory;  // null = the engine's default workload
    if (spec.workload.kind == WorkloadKind::kScenario) {
      if (spec.workload.scenario_path.empty()) {
        throw std::invalid_argument(
            "RunSpec: scenario workload needs a scenario_path");
      }
      factory = scenario::make_open_factory(
          scenario::load_cached(spec.workload.scenario_path),
          spec.machine.processors, spec.machine.quantum_length);
    }
    alloc::RoundRobin round_robin;
    alloc::HeSrpt hesrpt;
    alloc::Allocator* const machine =
        spec.allocator == AllocatorKind::kRoundRobin
            ? static_cast<alloc::Allocator*>(&round_robin)
            : spec.allocator == AllocatorKind::kHesrpt
                  ? static_cast<alloc::Allocator*>(&hesrpt)
                  : nullptr;
    const open::OpenResult result = core::run_open(
        make_scheduler(spec.scheduler, spec.scheduler_params), open_config,
        seed, factory, machine);
    append_open_metrics(result, record);
    return record;
  }

  // Workload generation consumes the run's stream from the start so a
  // given seed index always means the same jobs, faulted or not.
  util::Rng workload_rng(seed);
  auto submissions = build_workload(spec, workload_rng);
  std::vector<metrics::JobSummary> summaries;
  summaries.reserve(submissions.size());
  for (const auto& s : submissions) {
    summaries.push_back(metrics::JobSummary{
        s.job->total_work(), s.job->critical_path(), s.release_step});
  }

  sim::SimConfig config{.processors = spec.machine.processors,
                        .quantum_length = spec.machine.quantum_length,
                        .engine = spec.engine};
  config.obs.event_bus = &bus;
  config.cancel = context.cancel;
  // Hierarchical runs default their group loops to single-threaded inside
  // a sweep: runs are the sweep's unit of parallelism, and nested pools
  // would oversubscribe without changing any result (the sharded engine
  // is thread-count independent).  Sweeps of few large hier cells can opt
  // into wider group loops via spec.hier_threads.
  config.hier.groups = spec.hier_groups;
  config.hier.allocator = spec.hier_alloc;
  config.hier.threads = std::max(1, spec.hier_threads);

  // Cluster axis: route the workload across cluster_machines machines of
  // machine.processors each.  Like hier_threads, cluster_threads only
  // parallelizes the machine loops without changing any result.
  if (spec.cluster_machines != 0) {
    if (spec.faults.scenario != FaultScenario::kNone) {
      throw std::invalid_argument(
          "RunSpec: cluster runs do not compose with fault scenarios");
    }
    if (spec.hier_groups != 0) {
      throw std::invalid_argument(
          "RunSpec: cluster runs do not compose with hierarchical "
          "allocation");
    }
    if (spec.engine != sim::EngineKind::kSync) {
      throw std::invalid_argument(
          "RunSpec: cluster runs require the sync engine");
    }
    config.cluster.machines = spec.cluster_machines;
    config.cluster.router = spec.router;
    config.cluster.migration_period = spec.migration_period;
    config.cluster.threads = std::max(1, spec.cluster_threads);
    // A scenario may carry heterogeneous machine shapes for the cluster it
    // was written for; they apply when the run's machine count matches
    // (shapes are scenario content, external by path like the jobs
    // themselves, so they never appear in the spec or its digest).
    if (spec.workload.kind == WorkloadKind::kScenario &&
        !spec.workload.scenario_path.empty()) {
      const scenario::ScenarioSpec& scenario =
          scenario::load_cached(spec.workload.scenario_path);
      if (static_cast<int>(scenario.cluster.shapes.size()) ==
          spec.cluster_machines) {
        config.cluster.shapes = scenario.cluster.shapes;
      }
    }
  }

  // One allocator instance per simulated run: allocators may be stateful
  // (round-robin rotates its start index), so sharing one across threads
  // would both race and break determinism.
  const auto run_once = [&spec, &config](
                            std::vector<sim::JobSubmission> subs,
                            const fault::FaultPlan* plan) {
    sim::SimConfig run_config = config;
    run_config.faults = plan;
    alloc::RoundRobin round_robin;
    alloc::HeSrpt hesrpt;
    return core::run_set(
        make_scheduler(spec.scheduler, spec.scheduler_params),
        std::move(subs), run_config,
        spec.allocator == AllocatorKind::kRoundRobin
            ? static_cast<alloc::Allocator*>(&round_robin)
            : spec.allocator == AllocatorKind::kHesrpt
                  ? static_cast<alloc::Allocator*>(&hesrpt)
                  : nullptr);
  };

  if (spec.faults.scenario == FaultScenario::kNone) {
    const sim::SimResult result = run_once(std::move(submissions), nullptr);
    append_sim_metrics(spec, result, summaries, record);
    return record;
  }

  // Faulty run: simulate the fault-free reference of the identical
  // workload first (the plans are anchored on its makespan), then replay
  // the same jobs under the plan and analyze the difference.
  const sim::SimResult reference = run_once(std::move(submissions), nullptr);

  util::Rng replay_rng(seed);
  auto faulty_submissions = build_workload(spec, replay_rng);
  util::Rng fault_rng = util::Rng::derive(seed, 1);
  const fault::FaultPlan plan = build_fault_plan(spec, reference, fault_rng);
  const sim::SimResult faulty =
      run_once(std::move(faulty_submissions), &plan);

  append_sim_metrics(spec, faulty, summaries, record);
  const fault::ResilienceReport report =
      fault::analyze_resilience(faulty, reference);
  record.metrics.emplace_back("reference_makespan",
                              static_cast<double>(reference.makespan));
  record.metrics.emplace_back("makespan_degradation",
                              report.makespan_degradation);
  record.metrics.emplace_back(
      "recovery_quanta", static_cast<double>(report.max_recovery_quanta));
  record.metrics.emplace_back("overshoot", report.max_overshoot);
  record.metrics.emplace_back("lost_work",
                              static_cast<double>(report.lost_work));
  record.metrics.emplace_back("crashes",
                              static_cast<double>(report.crash_events));
  record.metrics.emplace_back("accounting_balanced",
                              report.accounting_balances() ? 1.0 : 0.0);
  record.metrics.emplace_back(
      "validation_issues",
      static_cast<double>(
          sim::validate_result(faulty, spec.machine.processors).size()));
  return record;
}

std::vector<RunRecord> SweepRunner::run(
    const std::vector<RunSpec>& specs) const {
  std::vector<RunRecord> records(specs.size());
  if (specs.empty()) {
    return records;
  }

  ThreadPool pool(ThreadPool::resolve_threads(config_.threads));
  std::mutex progress_mutex;
  std::mutex metrics_mutex;
  std::int64_t completed = 0;
  const auto start = std::chrono::steady_clock::now();

  for (std::size_t i = 0; i < specs.size(); ++i) {
    pool.submit([this, i, &specs, &records, &progress_mutex, &metrics_mutex,
                 &completed, start] {
      const auto seconds_since_start = [start] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
      };
      const double run_start = seconds_since_start();
      // Each run aggregates into a private registry; the merge below is
      // commutative and associative, so the combined registry is
      // independent of thread count and completion order.
      obs::MetricsRegistry local_metrics;
      RunRecord record =
          execute_run(specs[i], config_.base_seed,
                      config_.metrics != nullptr ? &local_metrics : nullptr);
      const double run_end = seconds_since_start();
      record.run_id = static_cast<std::int64_t>(i);
      if (config_.metrics != nullptr) {
        std::lock_guard<std::mutex> lock(metrics_mutex);
        config_.metrics->merge(local_metrics);
      }
      if (config_.timeline != nullptr) {
        config_.timeline->record(static_cast<std::int64_t>(i),
                                 record.scheduler + "/" + record.workload,
                                 run_start, run_end);
      }
      if (config_.profiler != nullptr) {
        config_.profiler->record("sweep.run", run_end - run_start,
                                 /*items=*/1);
      }
      records[i] = std::move(record);
      if (config_.on_progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        ++completed;
        Progress p;
        p.completed = completed;
        p.total = static_cast<std::int64_t>(specs.size());
        const double elapsed = seconds_since_start();
        p.elapsed_seconds = elapsed;
        p.runs_per_second =
            elapsed > 0.0 ? static_cast<double>(completed) / elapsed : 0.0;
        p.eta_seconds = p.runs_per_second > 0.0
                            ? static_cast<double>(p.total - completed) /
                                  p.runs_per_second
                            : 0.0;
        config_.on_progress(p);
      }
    });
  }
  pool.wait();
  return records;
}

SweepOutcome SweepRunner::run_monitored(
    const std::vector<RunSpec>& specs) const {
  const RobustnessConfig& rb = config_.robustness;
  SweepOutcome outcome;
  outcome.records.resize(specs.size());
  if (specs.empty()) {
    return outcome;
  }

  // The watchdog exists only when something can cancel a run; without it
  // the monitored path carries no extra threads.
  std::optional<Watchdog> watchdog;
  if (rb.run_timeout_seconds > 0.0 || rb.abort != nullptr) {
    Watchdog::Config wc;
    wc.run_timeout_seconds = rb.run_timeout_seconds;
    wc.abort = rb.abort;
    watchdog.emplace(wc);
  }

  const auto drained = [&rb] {
    return (rb.drain != nullptr && rb.drain->cancelled()) ||
           (rb.abort != nullptr && rb.abort->cancelled());
  };

  ThreadPool pool(ThreadPool::resolve_threads(config_.threads));
  std::mutex progress_mutex;
  std::mutex metrics_mutex;
  std::mutex outcome_mutex;
  std::int64_t completed = 0;
  const auto start = std::chrono::steady_clock::now();
  const auto seconds_since_start = [start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  // Resolved-cell progress (success, quarantine or resume), same shape as
  // run()'s telemetry.
  const auto report_progress = [&] {
    if (!config_.on_progress) {
      return;
    }
    std::lock_guard<std::mutex> lock(progress_mutex);
    ++completed;
    Progress p;
    p.completed = completed;
    p.total = static_cast<std::int64_t>(specs.size());
    const double elapsed = seconds_since_start();
    p.elapsed_seconds = elapsed;
    p.runs_per_second =
        elapsed > 0.0 ? static_cast<double>(completed) / elapsed : 0.0;
    p.eta_seconds = p.runs_per_second > 0.0
                        ? static_cast<double>(p.total - completed) /
                              p.runs_per_second
                        : 0.0;
    config_.on_progress(p);
  };
  const auto count = [&outcome_mutex](std::int64_t& field) {
    std::lock_guard<std::mutex> lock(outcome_mutex);
    ++field;
  };
  const auto bump_metric = [&](const char* name) {
    if (config_.metrics != nullptr) {
      std::lock_guard<std::mutex> lock(metrics_mutex);
      config_.metrics->counter(name).add(1);
    }
  };

  for (std::size_t i = 0; i < specs.size(); ++i) {
    pool.submit([&, i] {
      const RunSpec& spec = specs[i];
      const std::uint64_t digest = spec_digest(spec);
      const auto run_id = static_cast<std::int64_t>(i);

      // Resume: a cell recorded complete under the same digest re-uses
      // its journaled record verbatim.
      if (rb.resume != nullptr) {
        const RunRecord* recorded =
            rb.resume->completed_record(run_id, digest);
        if (recorded != nullptr) {
          RunRecord record = *recorded;
          record.run_id = run_id;
          outcome.records[i] = std::move(record);
          count(outcome.resumed);
          bump_metric("exp.resumed_cells");
          report_progress();
          return;
        }
      }

      if (drained()) {
        count(outcome.skipped);
        return;
      }

      count(outcome.executed);
      util::CancelToken token;
      const int attempts_allowed = 1 + std::max(0, rb.max_retries);
      std::string failure_cause;
      for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
        if (attempt > 0) {
          count(outcome.retries);
          bump_metric("exp.retries");
          // Backoff, in slices so a drain cuts the wait short.
          const auto wait_until =
              std::chrono::steady_clock::now() +
              std::chrono::duration_cast<
                  std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(
                      backoff_seconds(rb.backoff_seconds, attempt - 1)));
          while (std::chrono::steady_clock::now() < wait_until &&
                 !drained()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
          if (drained()) {
            count(outcome.skipped);
            return;
          }
        }
        token.reset();
        if (rb.journal != nullptr) {
          rb.journal->record_start(run_id, digest, attempt);
        }
        std::optional<Watchdog::Lease> lease;
        if (watchdog.has_value()) {
          lease.emplace(watchdog->watch(&token));
        }
        // Metrics of failed attempts are discarded: only the successful
        // attempt's registry merges, so a retried cell contributes the
        // same engine metrics as an untroubled one.
        obs::MetricsRegistry local_metrics;
        const double run_start = seconds_since_start();
        try {
          RunContext context;
          context.metrics =
              config_.metrics != nullptr ? &local_metrics : nullptr;
          context.cancel = &token;
          context.attempt = attempt;
          RunRecord record = execute_run(spec, config_.base_seed, context);
          lease.reset();
          const double run_end = seconds_since_start();
          record.run_id = run_id;
          if (rb.journal != nullptr) {
            rb.journal->record_done(run_id, digest, record);
          }
          if (config_.metrics != nullptr) {
            std::lock_guard<std::mutex> lock(metrics_mutex);
            config_.metrics->merge(local_metrics);
          }
          if (config_.timeline != nullptr) {
            config_.timeline->record(run_id,
                                     record.scheduler + "/" + record.workload,
                                     run_start, run_end);
          }
          if (config_.profiler != nullptr) {
            config_.profiler->record("sweep.run", run_end - run_start,
                                     /*items=*/1);
          }
          outcome.records[i] = std::move(record);
          report_progress();
          return;
        } catch (const util::CancelledError& e) {
          lease.reset();
          if (e.cause() == util::CancelCause::kShutdown) {
            // Torn down by an abort: the cell stays incomplete in the
            // journal and re-executes on resume.
            if (rb.journal != nullptr) {
              rb.journal->record_failure(run_id, digest, attempt,
                                         "shutdown", e.what());
            }
            count(outcome.skipped);
            return;
          }
          count(outcome.timeouts);
          bump_metric("exp.timeouts");
          failure_cause = "timeout";
          if (rb.journal != nullptr) {
            rb.journal->record_failure(run_id, digest, attempt, "timeout",
                                       e.what());
          }
        } catch (const std::exception& e) {
          lease.reset();
          failure_cause = std::string("error: ") + e.what();
          if (rb.journal != nullptr) {
            rb.journal->record_failure(run_id, digest, attempt, "error",
                                       e.what());
          }
        }
      }

      // Poison run: the retry budget is gone.  Record identity + cause so
      // the artifacts say explicitly what is missing and why.
      RunRecord record;
      record.run_id = run_id;
      record.group = spec.group;
      record.scheduler = to_string(spec.scheduler);
      record.workload = to_string(spec.workload.kind);
      record.fault = to_string(spec.faults.scenario);
      record.engine = std::string(sim::to_string(spec.engine));
      record.hier_groups = spec.hier_groups;
      record.hier_alloc = spec.hier_alloc;
      record.cluster_machines = spec.cluster_machines;
      record.router = spec.router;
      if (spec.open.arrival != open::ArrivalKind::kNone) {
        record.arrival = open::to_string(spec.open.arrival);
      }
      record.failure = failure_cause;
      record.seed =
          util::Rng::derive_seed(config_.base_seed, spec.seed_index);
      if (rb.journal != nullptr) {
        rb.journal->record_quarantine(run_id, digest, attempts_allowed,
                                      failure_cause);
      }
      outcome.records[i] = std::move(record);
      count(outcome.quarantined);
      bump_metric("exp.quarantined");
      report_progress();
    });
  }
  pool.wait();
  outcome.interrupted = drained();
  return outcome;
}

}  // namespace abg::exp
