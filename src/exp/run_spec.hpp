// Declarative description of one simulation run of a parameter sweep.
//
// A RunSpec names everything a run needs — scheduler (by kind + params),
// workload (by generator kind + params), machine, optional fault scenario,
// and a seed index — without holding any live objects, so specs are cheap
// to copy across threads and a grid of them fully determines a sweep.  The
// runner materializes jobs / policies / fault plans per run from
// Rng::derive(base_seed, seed_index), which is what makes results
// independent of execution order and thread count.
//
// Grid points that differ only in scheduler share a seed index, so every
// scheduler variant faces byte-identical workloads (common random numbers:
// paired comparisons like Figure 6's A-Greedy/ABG ratios stay exact).
#pragma once

#include <cstdint>
#include <string>

#include "core/run.hpp"
#include "dag/job.hpp"
#include "obs/obs_config.hpp"

namespace abg::exp {

/// Scheduler families the sweep engine can instantiate.
enum class SchedulerKind { kAbg, kAGreedy, kAbgAuto, kStatic };

/// Tunables of the scheduler families (unused members are ignored).
struct SchedulerParams {
  /// ABG convergence rate r.
  double convergence_rate = 0.2;
  /// A-Greedy utilization δ and responsiveness ρ.
  double utilization = 0.8;
  double responsiveness = 2.0;
  /// Fixed request of the static bracket.
  int static_processors = 64;
};

/// Workload generators the sweep engine can materialize.
enum class WorkloadKind {
  /// Figure-6 multiprogrammed job set at a target load (workload::make_job_set).
  kJobSet,
  /// `jobs` independent fork-join jobs at a target transition factor
  /// (workload::make_fork_join_job, Figure-5 spec).
  kForkJoin,
  /// `jobs` square-wave ProfileJobs with randomized amplitudes and phase
  /// lengths (the fault-resilience workload).
  kSquareWave,
  /// Declarative scenario file (scenario::ScenarioSpec); the spec's
  /// scenario_path names the file and the scenario owns job generation,
  /// releases and machine defaults.
  kScenario,
};

/// Release-time schedule applied to a closed workload's submissions
/// (workload/arrivals helpers).  kBatched — every job at step 0 — is the
/// historic default; the other kinds feed Theorem 5's arbitrary-release
/// bound and the arrivals bench.
enum class ReleaseKind { kBatched, kStaggered, kPoisson };

/// Parameters of the workload generators (unused members are ignored).
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kJobSet;
  /// kJobSet: target load (Σ average parallelism / P).  Open-axis runs
  /// (RunSpec::open) reuse this as the offered load rho the arrival gap
  /// is calibrated to.
  double load = 1.0;
  /// kForkJoin: target transition factor.
  double transition_factor = 10.0;
  /// kForkJoin / kSquareWave: number of jobs.
  int jobs = 1;
  /// kSquareWave: per-job profile length scale in levels.
  dag::Steps levels = 600;
  /// Release schedule of the generated jobs (closed runs only; the open
  /// axis owns its own arrival process).  Releases are drawn from the
  /// run's workload stream after job generation, so kBatched runs keep
  /// their historic draw sequence.
  ReleaseKind release = ReleaseKind::kBatched;
  /// kStaggered: the fixed inter-release gap; kPoisson: the mean
  /// inter-release gap (both in steps).
  double release_gap = 0.0;
  /// kScenario: path of the scenario file to load (scenario::load_cached).
  /// The scenario's own release schedule applies; the generic release
  /// fields above are ignored for scenario workloads.
  std::string scenario_path;
};

/// Machine parameters of a run.
struct MachineSpec {
  int processors = 128;
  dag::Steps quantum_length = 1000;
};

/// Disturbance patterns of the fault-resilience study.  Plans are anchored
/// on the fault-free reference makespan of the same (workload, scheduler,
/// machine), which the runner simulates first within the same task.
enum class FaultScenario { kNone, kStep, kImpulse, kPoisson, kCrash };

/// Fault-scenario parameters (ignored when scenario == kNone).
struct FaultSpec {
  FaultScenario scenario = FaultScenario::kNone;
  /// Fraction of the machine affected (step/impulse loss, poisson cap).
  double fraction = 0.5;
  /// kCrash: index of the crashing job and number of crashes.
  int crash_job = 0;
  int crashes = 2;
  /// kCrash: restart from scratch instead of the last quantum checkpoint.
  bool scratch = false;
};

/// The open-system axis of a run.  When `arrival != kNone` the run streams
/// `jobs_total` continuously arriving jobs through open::run_stream (the
/// default open workload, constant-memory statistics) instead of
/// simulating a closed job set; workload.load doubles as the offered load
/// the arrival gap is calibrated to (0 = use the generator defaults).
/// Open runs compose with the scheduler, machine, and allocator axes but
/// not with faults, hierarchical allocation, or the async engine.
struct OpenSpec {
  open::ArrivalKind arrival = open::ArrivalKind::kNone;
  /// Arrivals to stream through the system (>= 1 when engaged).
  std::int64_t jobs_total = 100000;
  /// kTrace: path of the JSONL arrival trace to replay.
  std::string trace_path;
};

/// OS-level allocator coupled with the schedulers.
enum class AllocatorKind {
  /// Engine default: dynamic equi-partitioning (the paper's setup).
  kDefault,
  /// Round-robin (the other fair allocator the benches compare against).
  kRoundRobin,
  /// Size-aware heSRPT-style shares (alloc::HeSrpt): rank jobs by
  /// remaining work and split the machine along (k/n)^(1/p) boundaries.
  kHesrpt,
};

std::string to_string(AllocatorKind kind);
AllocatorKind allocator_kind_from_name(const std::string& name);

/// Failure-injection hooks for robustness tests.  Never part of a spec's
/// digest: they change how a run *executes*, not what it computes, and
/// exist so ctest fixtures can exercise the watchdog / retry / quarantine
/// machinery deterministically.
struct DebugHooks {
  /// The run blocks until its cancellation token fires (then unwinds with
  /// util::CancelledError) instead of simulating.  Requires a token; a
  /// hang without one would never terminate, so it throws std::logic_error.
  bool hang = false;
  /// The first `fail_attempts` attempts of the run throw
  /// std::runtime_error before simulating; attempt `fail_attempts`
  /// onwards succeed.  0 disables the hook.
  int fail_attempts = 0;
};

/// One run of a sweep: the full cartesian point plus its seed index.
struct RunSpec {
  SchedulerKind scheduler = SchedulerKind::kAbg;
  SchedulerParams scheduler_params;
  WorkloadSpec workload;
  MachineSpec machine;
  FaultSpec faults;
  /// Open-system axis; arrival == kNone (the default) keeps the closed
  /// path byte-identical to pre-open artifacts.
  OpenSpec open;
  AllocatorKind allocator = AllocatorKind::kDefault;
  /// Boundary model the run simulates under (sync global quanta or
  /// per-job async quanta); an engine axis in a grid makes boundary-model
  /// comparisons on common random numbers.
  sim::EngineKind engine = sim::EngineKind::kSync;
  /// Hierarchical allocation: number of groups for the sharded set engine
  /// (0 = the flat path, the default) and the group/root allocator name
  /// ("" = the run's own allocator kind; else "deq" | "rr").
  int hier_groups = 0;
  std::string hier_alloc;
  /// Worker threads for a hier run's group loops (>= 1).  The default of 1
  /// keeps runs as the sweep's sole unit of parallelism; larger values let
  /// a sweep of few large hier cells use the machine.  The sharded engine
  /// is thread-count independent, so this never changes a record — which
  /// is also why it is excluded from the run's journal digest.
  int hier_threads = 1;
  /// Cluster axis: number of machines for the multi-machine engine
  /// (0 = the flat single-machine path, the default).  When engaged the
  /// run's `machine.processors` is the per-machine processor count and the
  /// cluster engine routes jobs across `cluster_machines` uniform machines.
  int cluster_machines = 0;
  /// Router policy of a cluster run ("" = the engine default,
  /// least-loaded; else round-robin | desire-aware | class-affinity).
  std::string router;
  /// Inter-machine migration period in quanta (0 = migration disabled).
  dag::Steps migration_period = 0;
  /// Worker threads for a cluster run's machine loops (>= 1).  Like
  /// hier_threads this never changes a record (the cluster engine is
  /// thread-count independent) and is excluded from the journal digest.
  int cluster_threads = 1;
  /// Index fed to Rng::derive(base_seed, seed_index) for workload and
  /// fault-plan generation.  Specs sharing a seed index see identical
  /// workloads (use this to pair scheduler variants).
  std::uint64_t seed_index = 0;
  /// Aggregation key: records with equal (group, scheduler name) are
  /// summarized together by the ResultSink (e.g. "load=1.5").
  std::string group;
  /// Observability hooks threaded into the run's SimConfig.  A bus set
  /// here receives the run's engine events (chained after the runner's
  /// own sinks).  Because specs are executed concurrently, a bus must not
  /// be shared between specs of one sweep.
  obs::ObsConfig obs = {};
  /// Failure-injection hooks (tests only; excluded from the digest).
  DebugHooks debug = {};
};

/// Canonical lower-case names used in CLI flags and JSON records.
std::string to_string(SchedulerKind kind);
std::string to_string(WorkloadKind kind);
std::string to_string(FaultScenario scenario);
std::string to_string(ReleaseKind kind);

/// Parses the canonical names (throws std::invalid_argument on unknown).
SchedulerKind scheduler_kind_from_name(const std::string& name);
WorkloadKind workload_kind_from_name(const std::string& name);
FaultScenario fault_scenario_from_name(const std::string& name);
ReleaseKind release_kind_from_name(const std::string& name);

/// Instantiates the scheduler a spec names.
core::SchedulerSpec make_scheduler(SchedulerKind kind,
                                   const SchedulerParams& params);

}  // namespace abg::exp
