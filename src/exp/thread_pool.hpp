// Fixed-size thread pool for the experiment runner.
//
// Deliberately simple: one shared FIFO queue, a fixed number of workers,
// no work stealing.  Sweep tasks are coarse (one full simulation each), so
// queue contention is negligible and a deterministic structure is worth
// more than the last few percent of scheduling efficiency — each task
// writes to a caller-owned slot, which is what lets SweepRunner produce
// byte-identical results at any thread count.
//
// Exception contract: the first exception thrown by any task is captured
// and rethrown from wait(); later exceptions are dropped.  Tasks submitted
// after a failure still run (they are independent simulations).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace abg::exp {

/// A fixed-size worker pool executing std::function<void()> tasks.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Drains the queue (discarding not-yet-started tasks), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Thread-safe; may be called from tasks.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first task exception (if any) and clears it.  The pool remains usable
  /// afterwards.
  void wait();

  /// Number of worker threads.
  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Wall-clock seconds each worker has spent executing tasks since
  /// construction (index = worker).  Snapshot under the pool lock; tasks
  /// still in flight are not included until they finish, so call after
  /// wait() for a complete picture.
  std::vector<double> worker_busy_seconds() const;

  /// Recommended worker count for `requested`: the value itself when
  /// positive, otherwise std::thread::hardware_concurrency (>= 1).
  static int resolve_threads(int requested);

 private:
  void worker_loop(std::size_t worker_index);

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
  /// Per-worker cumulative task-execution time (guarded by mutex_; each
  /// worker adds its slice under the post-task lock it takes anyway).
  std::vector<double> busy_seconds_;
  std::vector<std::thread> workers_;
};

}  // namespace abg::exp
