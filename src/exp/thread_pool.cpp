#include "exp/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace abg::exp {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  busy_seconds_.assign(static_cast<std::size_t>(n), 0.0);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    queue_.clear();
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

int ThreadPool::resolve_threads(int requested) {
  if (requested > 0) {
    return requested;
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    const auto start = std::chrono::steady_clock::now();
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_seconds_[worker_index] += elapsed.count();
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

std::vector<double> ThreadPool::worker_busy_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return busy_seconds_;
}

}  // namespace abg::exp
