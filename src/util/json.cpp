#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace abg::util {

Json Json::object() { return Json(Kind::kObject); }
Json Json::array() { return Json(Kind::kArray); }

Json Json::string(std::string value) {
  Json j(Kind::kString);
  j.string_ = std::move(value);
  return j;
}

Json Json::number(double value) {
  Json j(Kind::kNumber);
  j.number_ = value;
  return j;
}

Json Json::integer(std::int64_t value) {
  Json j(Kind::kInteger);
  j.integer_ = value;
  return j;
}

Json Json::boolean(bool value) {
  Json j(Kind::kBoolean);
  j.boolean_ = value;
  return j;
}

Json& Json::set(std::string key, Json value) {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("Json::set: not an object");
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) {
    throw std::logic_error("Json::push: not an array");
  }
  elements_.push_back(std::move(value));
  return *this;
}

std::string Json::format_number(double value) {
  // JSON has no NaN/Inf; clamp to null-adjacent sentinels explicitly so
  // malformed metrics are visible rather than silently invalid.
  if (std::isnan(value) || std::isinf(value)) {
    return "null";
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) {
    throw std::runtime_error("Json::format_number: to_chars failed");
  }
  return std::string(buf, ptr);
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::write(std::ostream& os) const {
  switch (kind_) {
    case Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) {
          os << ',';
        }
        first = false;
        os << '"' << json_escape(key) << "\":";
        value.write(os);
      }
      os << '}';
      break;
    }
    case Kind::kArray: {
      os << '[';
      bool first = true;
      for (const Json& value : elements_) {
        if (!first) {
          os << ',';
        }
        first = false;
        value.write(os);
      }
      os << ']';
      break;
    }
    case Kind::kString:
      os << '"' << json_escape(string_) << '"';
      break;
    case Kind::kNumber:
      os << format_number(number_);
      break;
    case Kind::kInteger:
      os << integer_;
      break;
    case Kind::kBoolean:
      os << (boolean_ ? "true" : "false");
      break;
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

}  // namespace abg::util
