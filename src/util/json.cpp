#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace abg::util {

Json Json::object() { return Json(Kind::kObject); }
Json Json::array() { return Json(Kind::kArray); }

Json Json::string(std::string value) {
  Json j(Kind::kString);
  j.string_ = std::move(value);
  return j;
}

Json Json::number(double value) {
  Json j(Kind::kNumber);
  j.number_ = value;
  return j;
}

Json Json::integer(std::int64_t value) {
  Json j(Kind::kInteger);
  j.integer_ = value;
  return j;
}

Json Json::boolean(bool value) {
  Json j(Kind::kBoolean);
  j.boolean_ = value;
  return j;
}

Json Json::null() { return Json(Kind::kNull); }

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kObject:
      return members_.size();
    case Kind::kArray:
      return elements_.size();
    default:
      return 0;
  }
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (found == nullptr) {
    throw std::out_of_range("Json::at: no member '" + std::string(key) + "'");
  }
  return *found;
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::kArray || index >= elements_.size()) {
    throw std::out_of_range("Json::at: array index out of range");
  }
  return elements_[index];
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) {
    throw std::logic_error("Json::as_string: not a string");
  }
  return string_;
}

double Json::as_number() const {
  if (kind_ == Kind::kInteger) {
    return static_cast<double>(integer_);
  }
  if (kind_ != Kind::kNumber) {
    throw std::logic_error("Json::as_number: not a number");
  }
  return number_;
}

std::int64_t Json::as_integer() const {
  if (kind_ != Kind::kInteger) {
    throw std::logic_error("Json::as_integer: not an integer");
  }
  return integer_;
}

bool Json::as_boolean() const {
  if (kind_ != Kind::kBoolean) {
    throw std::logic_error("Json::as_boolean: not a boolean");
  }
  return boolean_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("Json::members: not an object");
  }
  return members_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) {
    throw std::logic_error("Json::items: not an array");
  }
  return elements_;
}

Json& Json::set(std::string key, Json value) {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("Json::set: not an object");
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) {
    throw std::logic_error("Json::push: not an array");
  }
  elements_.push_back(std::move(value));
  return *this;
}

std::string Json::format_number(double value) {
  // JSON has no NaN/Inf; clamp to null-adjacent sentinels explicitly so
  // malformed metrics are visible rather than silently invalid.
  if (std::isnan(value) || std::isinf(value)) {
    return "null";
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) {
    throw std::runtime_error("Json::format_number: to_chars failed");
  }
  return std::string(buf, ptr);
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::write(std::ostream& os) const {
  switch (kind_) {
    case Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) {
          os << ',';
        }
        first = false;
        os << '"' << json_escape(key) << "\":";
        value.write(os);
      }
      os << '}';
      break;
    }
    case Kind::kArray: {
      os << '[';
      bool first = true;
      for (const Json& value : elements_) {
        if (!first) {
          os << ',';
        }
        first = false;
        value.write(os);
      }
      os << ']';
      break;
    }
    case Kind::kString:
      os << '"' << json_escape(string_) << '"';
      break;
    case Kind::kNumber:
      os << format_number(number_);
      break;
    case Kind::kInteger:
      os << integer_;
      break;
    case Kind::kBoolean:
      os << (boolean_ ? "true" : "false");
      break;
    case Kind::kNull:
      os << "null";
      break;
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

namespace {

// Strict recursive-descent parser over the document bytes.  Works through
// the public Json factories, so it cannot build a tree write() would not
// have produced (modulo number formatting).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("Json::parse: " + what + " at byte " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    if (depth_ > kMaxDepth) {
      fail("nesting deeper than 64 levels");
    }
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json::string(parse_string());
      case 't':
        if (consume_literal("true")) {
          return Json::boolean(true);
        }
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          return Json::boolean(false);
        }
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) {
          return Json::null();
        }
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    ++depth_;
    expect('{');
    Json object = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return object;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') {
        break;
      }
      if (c != ',') {
        fail("expected ',' or '}' in object");
      }
    }
    --depth_;
    return object;
  }

  Json parse_array() {
    ++depth_;
    expect('[');
    Json array = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return array;
    }
    while (true) {
      array.push(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') {
        break;
      }
      if (c != ',') {
        fail("expected ',' or ']' in array");
      }
    }
    --depth_;
    return array;
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("truncated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("high surrogate without following \\u escape");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unexpected low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (peek() < '0' || peek() > '9') {
      fail("invalid value");
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Json::integer(value);
      }
      // Out-of-int64-range integers fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      fail("malformed number");
    }
    return Json::number(value);
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace abg::util
