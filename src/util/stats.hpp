// Streaming summary statistics and small numeric helpers.
//
// Experiments aggregate thousands of per-job and per-quantum samples; the
// accumulators here compute mean / variance / extrema in one pass (Welford's
// algorithm) without storing samples, plus a quantile helper for the few
// places (trim analysis diagnostics) that need order statistics.
#pragma once

#include <cstddef>
#include <vector>

namespace abg::util {

/// One-pass accumulator for mean, variance, min and max.
class RunningStats {
 public:
  /// Adds one sample.
  void add(double x);

  /// Merges another accumulator into this one (parallel-friendly reduce).
  void merge(const RunningStats& other);

  /// Number of samples added.
  std::size_t count() const { return n_; }

  /// Sample mean; 0 when empty.
  double mean() const { return n_ > 0 ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Smallest sample; +inf when empty.
  double min() const;

  /// Largest sample; -inf when empty.
  double max() const;

  /// Sum of all samples.
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Contract for empty inputs: the vector helpers below return quiet NaN
// rather than throwing, so aggregation pipelines (sweep summaries, metric
// registries) can pass possibly-empty sample sets straight through —
// util::Json serializes NaN as null, which downstream tooling reads as "no
// data".  Test with std::isnan, not ==.

/// Returns the q-quantile (0 <= q <= 1) of `samples` using linear
/// interpolation between order statistics; quiet NaN on empty input.
double quantile(std::vector<double> samples, double q);

/// Arithmetic mean of a vector; quiet NaN on empty input.
double mean_of(const std::vector<double>& samples);

/// Geometric mean of strictly positive samples; quiet NaN on empty input.
/// Throws std::invalid_argument on a non-positive sample.
double geometric_mean(const std::vector<double>& samples);

/// Unbiased sample standard deviation; quiet NaN on empty input, 0 for a
/// single sample (matching RunningStats::stddev).
double stddev_of(const std::vector<double>& samples);

/// True when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool approx_equal(double a, double b, double rel_tol = 1e-9,
                  double abs_tol = 1e-12);

/// Integer ceiling division for non-negative operands.
constexpr long long ceil_div(long long num, long long den) {
  return (num + den - 1) / den;
}

}  // namespace abg::util
