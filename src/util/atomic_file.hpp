// Crash-safe artifact writing: temp-file + rename, and fail-fast probes.
//
// Every artifact the experiment harness emits (JSONL records, BENCH_*.json
// summaries, Perfetto traces, metrics registries, run journals' final
// merge targets) is either the complete new file or the previous file —
// never a half-written hybrid.  write_file_atomic() streams into
// "<path>.tmp.<pid>" in the same directory and std::filesystem::rename()s
// it onto the destination, which POSIX guarantees is atomic within a
// filesystem.  A crash mid-write leaves only a stale .tmp file behind.
//
// probe_writable() is the companion fail-fast check: it proves an output
// path can actually be created *before* hours of sweep CPU are burned,
// throwing a diagnostic that names the path when it cannot.
#pragma once

#include <functional>
#include <ostream>
#include <string>

namespace abg::util {

/// Writes an artifact atomically: `emit` streams into a sibling temp file
/// which is then renamed onto `path`.  Throws std::runtime_error naming
/// the path when the temp file cannot be opened, the stream fails, or the
/// rename fails (the temp file is removed on failure).
void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& emit);

/// Fail-fast writability check: verifies a file can be created at `path`
/// (by opening and removing the same sibling temp file the atomic writer
/// would use).  Throws std::runtime_error naming the path otherwise.
/// The destination itself is never touched.
void probe_writable(const std::string& path);

}  // namespace abg::util
