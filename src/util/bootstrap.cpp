#include "util/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace abg::util {

ConfidenceInterval bootstrap_mean(const std::vector<double>& samples,
                                  std::uint64_t seed, int resamples,
                                  double confidence) {
  if (samples.empty()) {
    throw std::invalid_argument("bootstrap_mean: empty sample set");
  }
  if (resamples < 1) {
    throw std::invalid_argument("bootstrap_mean: resamples must be >= 1");
  }
  if (!(confidence > 0.0) || confidence >= 1.0) {
    throw std::invalid_argument(
        "bootstrap_mean: confidence must lie in (0, 1)");
  }
  ConfidenceInterval ci;
  ci.point = mean_of(samples);
  if (samples.size() == 1) {
    ci.lower = ci.upper = ci.point;
    return ci;
  }
  Rng rng(seed);
  const auto n = static_cast<std::int64_t>(samples.size());
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int b = 0; b < resamples; ++b) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      sum += samples[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  const double tail = (1.0 - confidence) / 2.0;
  ci.lower = quantile(means, tail);
  ci.upper = quantile(std::move(means), 1.0 - tail);
  return ci;
}

}  // namespace abg::util
