// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in the library takes an explicit 64-bit seed so
// that experiments are exactly reproducible: the same seed always yields the
// same job, job set, and schedule.  The generator is a thin wrapper over
// std::mt19937_64 that adds the handful of draw shapes the workload
// generators need (uniform ints/reals, log-uniform, bounded geometric) and a
// `split` operation for deriving independent child streams.
#pragma once

#include <cstdint>
#include <random>

namespace abg::util {

/// Seeded pseudo-random generator with convenience draw methods.
class Rng {
 public:
  /// Constructs a generator from an explicit seed.  Equal seeds produce
  /// identical draw sequences on every platform (mt19937_64 is fully
  /// specified by the standard).
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in the closed interval [lo, hi].  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in the half-open interval [lo, hi).  Requires lo < hi.
  double uniform_real(double lo, double hi);

  /// Uniform real in [0, 1).
  double uniform01() { return uniform_real(0.0, 1.0); }

  /// Log-uniformly distributed real in [lo, hi]; useful for sampling scale
  /// parameters (e.g. phase lengths spanning orders of magnitude).
  /// Requires 0 < lo <= hi.
  double log_uniform(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Geometric draw (number of failures before first success) truncated to
  /// at most `max_value`.  Requires 0 < p <= 1 and max_value >= 0.
  std::int64_t geometric(double p, std::int64_t max_value);

  /// Derives an independent child generator.  The child stream is a pure
  /// function of the parent's seed and the sequence of prior splits, so
  /// workload generation stays reproducible when components draw in
  /// different orders.
  Rng split();

  /// Seed of the `index`-th derived stream of `base_seed`: a stateless
  /// splitmix64-style hash of (base_seed, index).  Unlike split(), the
  /// result does not depend on any generator state or call order, which is
  /// what lets N-thread and 1-thread sweeps produce identical runs —
  /// every run's stream is a pure function of (base seed, run index).
  static std::uint64_t derive_seed(std::uint64_t base_seed,
                                   std::uint64_t index);

  /// Generator seeded with derive_seed(base_seed, index).  Replaces the
  /// ad-hoc `Rng(seed + k)` / `seed ^ salt` reseeding the harnesses used
  /// to write by hand.
  static Rng derive(std::uint64_t base_seed, std::uint64_t index) {
    return Rng(derive_seed(base_seed, index));
  }

  /// Access to the raw engine for use with standard distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace abg::util
