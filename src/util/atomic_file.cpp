#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include <unistd.h>

namespace abg::util {

namespace {

/// The sibling temp path: same directory (so the rename cannot cross a
/// filesystem), disambiguated by pid so concurrent processes writing the
/// same artifact do not clobber each other's temp files.
std::string temp_path_for(const std::string& path) {
  return path + ".tmp." +
         std::to_string(static_cast<long long>(::getpid()));
}

[[noreturn]] void fail(const std::string& action, const std::string& path) {
  throw std::runtime_error("output path not writable: " + path + " (" +
                           action + ": " + std::strerror(errno) + ")");
}

}  // namespace

void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& emit) {
  const std::string temp = temp_path_for(path);
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      fail("cannot create temp file", path);
    }
    emit(out);
    out.flush();
    if (!out) {
      std::error_code ignored;
      std::filesystem::remove(temp, ignored);
      fail("write failed", path);
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(temp, ignored);
    throw std::runtime_error("output path not writable: " + path +
                             " (rename failed: " + ec.message() + ")");
  }
}

void probe_writable(const std::string& path) {
  const std::string temp = temp_path_for(path);
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      fail("cannot create file", path);
    }
  }
  std::error_code ignored;
  std::filesystem::remove(temp, ignored);
}

}  // namespace abg::util
