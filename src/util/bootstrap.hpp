// Percentile-bootstrap confidence intervals.
//
// The figure harnesses report mean performance ratios over randomized
// workloads; a bootstrap interval states how much of the reported effect
// is sampling noise.  Deterministic given the seed, like everything else
// in the library.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace abg::util {

/// A two-sided confidence interval around a point estimate.
struct ConfidenceInterval {
  double point = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};

/// Percentile bootstrap for the mean of `samples`: resamples with
/// replacement `resamples` times and returns the (1-confidence)/2 and
/// 1-(1-confidence)/2 quantiles of the resampled means.  Requires a
/// non-empty sample set, resamples >= 1 and confidence in (0, 1).
ConfidenceInterval bootstrap_mean(const std::vector<double>& samples,
                                  std::uint64_t seed, int resamples = 1000,
                                  double confidence = 0.95);

}  // namespace abg::util
