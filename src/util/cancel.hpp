// Cooperative cancellation for long-running work.
//
// A CancelToken is a one-shot, thread-safe flag with a cause.  The owner
// (a watchdog deadline, a signal handler, a test) cancels it; the worker
// (the simulation engines, the experiment runner's test hooks) polls it at
// loop boundaries and aborts by throwing CancelledError.  The first cancel
// wins: a token cancelled for kTimeout stays a timeout even if a shutdown
// lands later, so failure causes recorded in run journals are unambiguous.
//
// Cancellation is strictly cooperative — nothing is interrupted
// asynchronously — which is what keeps it safe to use under sanitizers
// and inside deterministic engines: a run that is never polled simply
// finishes, and a cancelled run unwinds through ordinary C++ exceptions.
//
// cancel() is async-signal-safe (a single atomic store-like CAS), so
// signal handlers may cancel tokens directly.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace abg::util {

/// Why a token was cancelled.  kNone means "not cancelled".
enum class CancelCause : int {
  kNone = 0,
  /// A watchdog deadline expired.
  kTimeout = 1,
  /// An orderly shutdown (SIGINT/SIGTERM drain) was requested.
  kShutdown = 2,
};

/// One-shot cancellation flag with a cause.  Thread-safe; the first
/// cancel() fixes the cause, later calls are no-ops.
class CancelToken {
 public:
  /// Requests cancellation.  Async-signal-safe; first caller wins.
  void cancel(CancelCause cause) {
    int expected = 0;
    cause_.compare_exchange_strong(expected, static_cast<int>(cause),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire);
  }

  /// True once cancel() has been called.
  bool cancelled() const {
    return cause_.load(std::memory_order_acquire) !=
           static_cast<int>(CancelCause::kNone);
  }

  /// The winning cause; kNone while not cancelled.
  CancelCause cause() const {
    return static_cast<CancelCause>(cause_.load(std::memory_order_acquire));
  }

  /// Re-arms the token (between retry attempts of the same run).  Must not
  /// race cancel(); the experiment runner resets only while the run is not
  /// registered with any watchdog.
  void reset() {
    cause_.store(static_cast<int>(CancelCause::kNone),
                 std::memory_order_release);
  }

 private:
  std::atomic<int> cause_{0};
};

/// Canonical short name of a cause ("timeout" / "shutdown"), used in run
/// journals and diagnostics.
inline const char* to_string(CancelCause cause) {
  switch (cause) {
    case CancelCause::kTimeout:
      return "timeout";
    case CancelCause::kShutdown:
      return "shutdown";
    case CancelCause::kNone:
      break;
  }
  return "none";
}

/// Thrown by cancellation poll sites when their token fired.
class CancelledError : public std::runtime_error {
 public:
  CancelledError(const std::string& what, CancelCause cause)
      : std::runtime_error(what), cause_(cause) {}

  CancelCause cause() const { return cause_; }

 private:
  CancelCause cause_;
};

}  // namespace abg::util
