// Minimal deterministic JSON emission for experiment results.
//
// The experiment runner streams machine-readable results (JSONL records
// and BENCH_*.json summaries) that must be byte-identical across runs and
// thread counts, so the writer is deliberately strict: object keys keep
// insertion order, doubles are rendered with std::to_chars (shortest
// round-trip form, locale-independent), and there is no whitespace
// variation.  Only what the sinks need is implemented — construction and
// serialization, no parsing.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace abg::util {

/// An immutable-ish JSON value tree with deterministic serialization.
class Json {
 public:
  /// Scalar constructors.
  static Json object();
  static Json array();
  static Json string(std::string value);
  static Json number(double value);
  static Json integer(std::int64_t value);
  static Json boolean(bool value);

  /// Adds a key/value pair to an object (keys keep insertion order; the
  /// caller must not repeat keys).  Returns *this for chaining.  Throws
  /// std::logic_error when this value is not an object.
  Json& set(std::string key, Json value);

  /// Appends an element to an array.  Returns *this for chaining.  Throws
  /// std::logic_error when this value is not an array.
  Json& push(Json value);

  /// Serializes compactly (no spaces, "\n"-free); deterministic for a
  /// deterministically built tree.
  void write(std::ostream& os) const;

  /// write() into a string.
  std::string dump() const;

  /// Renders a double exactly as the serializer would (shortest
  /// round-trip via std::to_chars).  Exposed so labels derived from
  /// parameter values match the emitted JSON.
  static std::string format_number(double value);

 private:
  enum class Kind { kObject, kArray, kString, kNumber, kInteger, kBoolean };

  explicit Json(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::vector<std::pair<std::string, Json>> members_;  // kObject
  std::vector<Json> elements_;                         // kArray
  std::string string_ = {};                            // kString
  double number_ = 0.0;                                // kNumber
  std::int64_t integer_ = 0;                           // kInteger
  bool boolean_ = false;                               // kBoolean
};

/// Escapes `text` as the contents of a JSON string literal (no quotes).
std::string json_escape(const std::string& text);

}  // namespace abg::util
