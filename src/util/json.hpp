// Minimal deterministic JSON emission for experiment results.
//
// The experiment runner streams machine-readable results (JSONL records
// and BENCH_*.json summaries) that must be byte-identical across runs and
// thread counts, so the writer is deliberately strict: object keys keep
// insertion order, doubles are rendered with std::to_chars (shortest
// round-trip form, locale-independent), and there is no whitespace
// variation.  A small strict parser (Json::parse) exists for the tools
// that validate emitted artifacts (trace_check); it accepts exactly the
// JSON grammar, nothing vendor-specific.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace abg::util {

/// An immutable-ish JSON value tree with deterministic serialization.
class Json {
 public:
  /// Scalar constructors.
  static Json object();
  static Json array();
  static Json string(std::string value);
  static Json number(double value);
  static Json integer(std::int64_t value);
  static Json boolean(bool value);
  static Json null();

  /// Parses a complete JSON document (trailing whitespace allowed, trailing
  /// garbage rejected).  Numbers without '.', 'e' or 'E' that fit int64
  /// become integers, everything else a double.  Throws
  /// std::invalid_argument with a byte offset on malformed input.
  static Json parse(std::string_view text);

  /// Adds a key/value pair to an object (keys keep insertion order; the
  /// caller must not repeat keys).  Returns *this for chaining.  Throws
  /// std::logic_error when this value is not an object.
  Json& set(std::string key, Json value);

  /// Appends an element to an array.  Returns *this for chaining.  Throws
  /// std::logic_error when this value is not an array.
  Json& push(Json value);

  /// Serializes compactly (no spaces, "\n"-free); deterministic for a
  /// deterministically built tree.
  void write(std::ostream& os) const;

  /// write() into a string.
  std::string dump() const;

  /// Renders a double exactly as the serializer would (shortest
  /// round-trip via std::to_chars).  Exposed so labels derived from
  /// parameter values match the emitted JSON.
  static std::string format_number(double value);

  /// Kind queries.
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_integer() const { return kind_ == Kind::kInteger; }
  bool is_boolean() const { return kind_ == Kind::kBoolean; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Element / member count of an array or object; 0 for scalars.
  std::size_t size() const;

  /// Object member lookup (first match in insertion order); nullptr when
  /// the key is absent or this value is not an object.
  const Json* find(std::string_view key) const;

  /// Like find() but throws std::out_of_range when absent.
  const Json& at(std::string_view key) const;

  /// Array element access; throws std::out_of_range when out of bounds or
  /// not an array.
  const Json& at(std::size_t index) const;

  /// Typed reads; each throws std::logic_error on a kind mismatch.
  /// as_number additionally accepts integers (widened to double).
  const std::string& as_string() const;
  double as_number() const;
  std::int64_t as_integer() const;
  bool as_boolean() const;

  /// Object members in insertion order; throws std::logic_error when this
  /// value is not an object.
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Array elements; throws std::logic_error when this value is not an
  /// array.
  const std::vector<Json>& items() const;

 private:
  enum class Kind {
    kObject,
    kArray,
    kString,
    kNumber,
    kInteger,
    kBoolean,
    kNull
  };

  explicit Json(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::vector<std::pair<std::string, Json>> members_;  // kObject
  std::vector<Json> elements_;                         // kArray
  std::string string_ = {};                            // kString
  double number_ = 0.0;                                // kNumber
  std::int64_t integer_ = 0;                           // kInteger
  bool boolean_ = false;                               // kBoolean
};

/// Escapes `text` as the contents of a JSON string literal (no quotes).
std::string json_escape(const std::string& text);

}  // namespace abg::util
