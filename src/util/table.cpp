#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace abg::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: must have at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    cells.push_back(format_double(v, precision));
  }
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        os << ',';
      }
      os << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string format_double(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

}  // namespace abg::util
