#include "util/cli.hpp"

#include <algorithm>
#include <stdexcept>

namespace abg::util {

namespace {

bool is_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!is_flag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string name = body.substr(0, eq);
      if (name.empty()) {
        throw std::invalid_argument("Cli: malformed flag '" + arg + "'");
      }
      flags_[name].push_back(body.substr(eq + 1));
      continue;
    }
    // `--name value` when the next token is not itself a flag; otherwise a
    // bare boolean flag.
    if (i + 1 < argc && !is_flag(argv[i + 1])) {
      flags_[body].push_back(argv[i + 1]);
      ++i;
    } else {
      flags_[body].push_back("true");
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.contains(name); }

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second.back();
}

std::vector<std::string> Cli::get_all(const std::string& name) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? std::vector<std::string>{} : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return fallback;
  }
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(it->second.back(), &pos);
    if (pos != it->second.back().size()) {
      throw std::invalid_argument("trailing characters");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: flag --" + name +
                                " expects an integer, got '" + it->second.back() +
                                "'");
  }
}

std::int64_t Cli::get_positive_int(const std::string& name,
                                   std::int64_t fallback) const {
  if (!has(name)) {
    return fallback;
  }
  const std::int64_t value = get_int(name, fallback);
  if (value < 1) {
    throw std::invalid_argument("Cli: flag --" + name +
                                " expects a positive integer, got '" +
                                get(name, "") + "'");
  }
  return value;
}

std::int64_t Cli::get_non_negative_int(const std::string& name,
                                       std::int64_t fallback) const {
  if (!has(name)) {
    return fallback;
  }
  const std::int64_t value = get_int(name, fallback);
  if (value < 0) {
    throw std::invalid_argument("Cli: flag --" + name +
                                " expects a non-negative integer, got '" +
                                get(name, "") + "'");
  }
  return value;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return fallback;
  }
  try {
    std::size_t pos = 0;
    const double value = std::stod(it->second.back(), &pos);
    if (pos != it->second.back().size()) {
      throw std::invalid_argument("trailing characters");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: flag --" + name +
                                " expects a real number, got '" + it->second.back() +
                                "'");
  }
}

double Cli::get_positive_double(const std::string& name,
                                double fallback) const {
  if (!has(name)) {
    return fallback;
  }
  const double value = get_double(name, fallback);
  if (!(value > 0.0)) {
    throw std::invalid_argument("Cli: flag --" + name +
                                " expects a positive real number, got '" +
                                get(name, "") + "'");
  }
  return value;
}

std::vector<std::string> Cli::names() const {
  std::vector<std::string> out;
  out.reserve(flags_.size());
  for (const auto& [name, values] : flags_) {
    out.push_back(name);
  }
  return out;
}

void Cli::reject_unknown(const std::vector<std::string>& allowed) const {
  for (const auto& [name, values] : flags_) {
    bool known = false;
    for (const std::string& a : allowed) {
      if (name == a) {
        known = true;
        break;
      }
    }
    if (known) {
      continue;
    }
    std::vector<std::string> sorted = allowed;
    std::sort(sorted.begin(), sorted.end());
    std::string list;
    for (const std::string& a : sorted) {
      if (!list.empty()) {
        list += ", --";
      }
      list += a;
    }
    throw std::invalid_argument("Cli: unknown flag --" + name +
                                " (valid flags: --" + list + ")");
  }
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return fallback;
  }
  const std::string& v = it->second.back();
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  throw std::invalid_argument("Cli: flag --" + name +
                              " expects a boolean, got '" + v + "'");
}

}  // namespace abg::util
