#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abg::util {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("Rng::uniform_int: lo > hi");
  }
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  if (!(lo < hi)) {
    throw std::invalid_argument("Rng::uniform_real: requires lo < hi");
  }
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::log_uniform(double lo, double hi) {
  if (!(lo > 0.0) || lo > hi) {
    throw std::invalid_argument("Rng::log_uniform: requires 0 < lo <= hi");
  }
  if (lo == hi) {
    return lo;
  }
  const double u = uniform_real(std::log(lo), std::log(hi));
  return std::clamp(std::exp(u), lo, hi);
}

bool Rng::bernoulli(double p) {
  const double q = std::clamp(p, 0.0, 1.0);
  if (q <= 0.0) {
    return false;
  }
  if (q >= 1.0) {
    return true;
  }
  std::bernoulli_distribution dist(q);
  return dist(engine_);
}

std::int64_t Rng::geometric(double p, std::int64_t max_value) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("Rng::geometric: requires 0 < p <= 1");
  }
  if (max_value < 0) {
    throw std::invalid_argument("Rng::geometric: requires max_value >= 0");
  }
  if (p >= 1.0) {
    return 0;
  }
  std::geometric_distribution<std::int64_t> dist(p);
  return std::min<std::int64_t>(dist(engine_), max_value);
}

namespace {

// splitmix64 finalizer: the standard 64-bit avalanche mix.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t Rng::derive_seed(std::uint64_t base_seed, std::uint64_t index) {
  // Two rounds of splitmix64 over base and index keep distinct indices
  // (and distinct bases) statistically independent even for small inputs.
  const std::uint64_t a = mix64(base_seed + 0x9E3779B97F4A7C15ULL);
  const std::uint64_t b = mix64(index + 0xD1B54A32D192ED03ULL);
  return mix64(a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

Rng Rng::split() {
  // Mix two draws through splitmix64-style finalization so child streams do
  // not overlap with the parent's continued output in practice.
  std::uint64_t z = engine_() + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= (z >> 31);
  return Rng(z ^ engine_());
}

}  // namespace abg::util
