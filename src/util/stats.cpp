#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace abg::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return n_ > 0 ? min_ : std::numeric_limits<double>::infinity();
}

double RunningStats::max() const {
  return n_ > 0 ? max_ : -std::numeric_limits<double>::infinity();
}

double quantile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double mean_of(const std::vector<double>& samples) {
  if (samples.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  RunningStats acc;
  for (double s : samples) {
    acc.add(s);
  }
  return acc.mean();
}

double geometric_mean(const std::vector<double>& samples) {
  if (samples.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double log_sum = 0.0;
  for (double s : samples) {
    if (!(s > 0.0)) {
      throw std::invalid_argument("geometric_mean: non-positive sample");
    }
    log_sum += std::log(s);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

double stddev_of(const std::vector<double>& samples) {
  if (samples.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  RunningStats acc;
  for (double s : samples) {
    acc.add(s);
  }
  return acc.stddev();
}

bool approx_equal(double a, double b, double rel_tol, double abs_tol) {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= abs_tol + rel_tol * scale;
}

}  // namespace abg::util
