// Tabular output for the benchmark harness.
//
// Every figure-reproduction binary prints its series both as an aligned
// ASCII table (human-readable) and as CSV (machine-readable, for replotting
// the paper's figures).  Table collects rows of heterogeneous cells and
// renders either form.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace abg::util {

/// A simple column-aligned table with CSV export.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a pre-formatted row.  The row must have exactly as many cells
  /// as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each double with `precision` significant decimal
  /// places.
  void add_numeric_row(const std::vector<double>& values, int precision = 4);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }

  /// Renders the table with aligned columns.
  void print(std::ostream& os) const;

  /// Renders the table as RFC-4180-style CSV (no quoting of cells; callers
  /// must not embed commas in cell text).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed decimal places.
std::string format_double(double value, int precision = 4);

}  // namespace abg::util
