// Minimal command-line flag parsing for the bench / example binaries.
//
// Supports `--name=value`, `--name value` and boolean `--name` forms.  The
// binaries use only a handful of flags (seed, sizes, --full, --csv), so a
// small hand-rolled parser keeps the repository dependency-free.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace abg::util {

/// Parsed command-line flags.
class Cli {
 public:
  /// Parses argv.  Unrecognized positional arguments are collected in
  /// `positional()`.  Throws std::invalid_argument on a malformed flag
  /// (e.g. `--=3`).
  Cli(int argc, const char* const* argv);

  /// True if --name was present in any form.
  bool has(const std::string& name) const;

  /// Returns the flag's value, or `fallback` if absent.  A bare boolean flag
  /// returns "true".  When the flag was repeated, the last occurrence wins.
  std::string get(const std::string& name, const std::string& fallback) const;

  /// Every value the flag was given, in order of appearance; empty when the
  /// flag is absent.  This is how grid flags (`--param k=v1,v2 --param ...`)
  /// are collected.
  std::vector<std::string> get_all(const std::string& name) const;

  /// Integer-valued flag; throws std::invalid_argument when the value does
  /// not parse.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// As get_int, but additionally throws std::invalid_argument when the
  /// flag is present with a value < 1 — for count-like flags where 0 or a
  /// negative value is a contradiction, not a fallback request.  The
  /// fallback itself is returned unvalidated when the flag is absent.
  std::int64_t get_positive_int(const std::string& name,
                                std::int64_t fallback) const;

  /// As get_int, but additionally throws std::invalid_argument when the
  /// flag is present with a value < 0 — for budget-like flags (retry
  /// counts) where 0 is meaningful but a negative value is garbage.
  std::int64_t get_non_negative_int(const std::string& name,
                                    std::int64_t fallback) const;

  /// Real-valued flag; throws std::invalid_argument when the value does not
  /// parse.
  double get_double(const std::string& name, double fallback) const;

  /// As get_double, but additionally throws std::invalid_argument when the
  /// flag is present with a value <= 0 — for duration-like flags (timeouts,
  /// backoff bases) where zero or negative time is a contradiction.
  double get_positive_double(const std::string& name, double fallback) const;

  /// Boolean flag: present without value, or with value true/false/1/0.
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Every distinct flag name seen on the command line, sorted.
  std::vector<std::string> names() const;

  /// Strict-flag validation: throws std::invalid_argument naming the first
  /// flag not in `allowed`, with the full allowed list in the message
  /// (sorted).  Tools that take a closed flag set call this once after
  /// construction so a typo fails loudly instead of being ignored.
  void reject_unknown(const std::vector<std::string>& allowed) const;

 private:
  std::map<std::string, std::vector<std::string>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace abg::util
