#include "open/streaming_engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dag/profile_job.hpp"
#include "obs/event_bus.hpp"
#include "sim/quantum_engine.hpp"
#include "sim/quantum_eval.hpp"
#include "workload/profiles.hpp"

namespace abg::open {

namespace {

/// Derived-stream roles of the run seed.  Job streams live under their own
/// derived base so a job index can never collide with a role index.
enum StreamRole : std::uint64_t {
  kArrivalStream = 1,
  kCalibrationStream = 2,
  kStatsSeed = 3,
  kJobSeedBase = 4,
};

/// Mean of the work_scale distribution the arrival process attaches to
/// jobs — 1 except for heavy-tail arrivals, whose bounded-Pareto sizes
/// inflate the offered load and must inflate the calibrated gap with it.
double mean_work_scale(ArrivalKind kind, const ArrivalConfig& config) {
  if (kind != ArrivalKind::kHeavyTail || config.tail_cap <= 1.0) {
    return 1.0;
  }
  const double a = config.tail_alpha;
  const double cap = config.tail_cap;
  if (a == 1.0) {
    return std::log(cap) / (1.0 - 1.0 / cap);
  }
  // Bounded Pareto on [1, cap]: E = a/(a-1) * (1 - cap^(1-a))/(1 - cap^-a).
  return a / (a - 1.0) * (1.0 - std::pow(cap, 1.0 - a)) /
         (1.0 - std::pow(cap, -a));
}

/// One recyclable runtime slot.  The pool never exceeds max_active slots;
/// a slot's job DAG is destroyed the moment the job completes and the
/// request-policy clone is reset for the next tenant instead of re-cloned.
struct Slot {
  std::unique_ptr<dag::Job> job;
  std::unique_ptr<sched::RequestPolicy> request;
  /// Global arrival index of the current tenant (-1 when free).
  std::int64_t index = -1;
  dag::Steps release = 0;
  dag::TaskCount waste = 0;
  int desire = 0;
  int previous_allotment = 0;
  std::int64_t local_quantum = 0;
  bool active = false;
};

/// A released arrival waiting for admission (the backlog element).
struct Pending {
  dag::Steps release = 0;
  double work_scale = 1.0;
  std::int64_t index = 0;
};

void publish_arrival(obs::EventBus* bus, const Pending& pending,
                     std::int64_t in_system) {
  obs::Event e;
  e.kind = obs::EventKind::kOpenArrival;
  e.step = pending.release;
  e.job = pending.index;
  e.in_system = in_system;
  bus->publish(e);
}

void publish_departure(obs::EventBus* bus, std::int64_t job,
                       dag::Steps completion, dag::Steps response,
                       dag::TaskCount work, std::int64_t in_system) {
  obs::Event e;
  e.kind = obs::EventKind::kOpenDeparture;
  e.step = completion;
  e.job = job;
  e.response = response;
  e.work = work;
  e.in_system = in_system;
  bus->publish(e);
}

}  // namespace

JobFactory default_open_job_factory(dag::Steps quantum_length) {
  if (quantum_length < 1) {
    throw std::invalid_argument(
        "default_open_job_factory: quantum_length must be >= 1");
  }
  const dag::Steps length = quantum_length;
  return [length](util::Rng& rng,
                  const Arrival& arrival) -> std::unique_ptr<dag::Job> {
    // Fork-join square waves with phase lengths drawn as fractions of the
    // quantum, so the stream mixes sub-quantum and multi-quantum jobs at
    // any L.  The arrival's work_scale widens the parallel phases.
    const dag::Steps lo = length / 16 + 1;
    const dag::Steps hi = length / 4 + 1;
    const dag::Steps serial_levels = rng.uniform_int(lo, hi);
    const dag::Steps parallel_levels = rng.uniform_int(lo, hi);
    const dag::TaskCount width = rng.uniform_int(2, 16);
    const auto periods = static_cast<int>(rng.uniform_int(1, 4));
    const double scale = std::clamp(arrival.work_scale, 1.0 / 16.0, 1024.0);
    const auto scaled_width = std::max<dag::TaskCount>(
        1, static_cast<dag::TaskCount>(
               std::round(static_cast<double>(width) * scale)));
    return std::make_unique<dag::ProfileJob>(workload::square_wave_profile(
        1, serial_levels, scaled_width, parallel_levels, periods));
  };
}

double calibrate_mean_work(const JobFactory& factory, std::uint64_t seed,
                           int samples) {
  if (!factory) {
    throw std::invalid_argument("calibrate_mean_work: null job factory");
  }
  if (samples < 1) {
    throw std::invalid_argument("calibrate_mean_work: samples must be >= 1");
  }
  util::Rng rng = util::Rng::derive(seed, kCalibrationStream);
  const Arrival probe;  // release 0, work_scale 1
  double sum = 0.0;
  for (int i = 0; i < samples; ++i) {
    const std::unique_ptr<dag::Job> job = factory(rng, probe);
    if (job == nullptr) {
      throw std::logic_error("calibrate_mean_work: factory returned null");
    }
    sum += static_cast<double>(job->total_work());
  }
  return sum / static_cast<double>(samples);
}

OpenResult run_stream(const sched::ExecutionPolicy& execution,
                      const sched::RequestPolicy& request_prototype,
                      const JobFactory& factory, alloc::Allocator& allocator,
                      const OpenConfig& config, std::uint64_t seed) {
  if (config.processors < 1) {
    throw std::invalid_argument("run_stream: processors must be >= 1");
  }
  if (config.quantum_length < 1) {
    throw std::invalid_argument("run_stream: quantum_length must be >= 1");
  }
  if (config.jobs_total < 1) {
    throw std::invalid_argument("run_stream: jobs_total must be >= 1");
  }
  if (!(config.load >= 0.0) || config.load > 1024.0) {
    throw std::invalid_argument("run_stream: load must be in [0, 1024]");
  }
  if (!factory) {
    throw std::invalid_argument("run_stream: null job factory");
  }
  const std::size_t max_active =
      config.max_active > 0 ? config.max_active
                            : static_cast<std::size_t>(config.processors);
  const dag::Steps length = config.quantum_length;

  // Resolve the arrival process; under a load target, calibrate the mean
  // gap so rho = (mean job work) / (mean gap * P) hits it.
  ArrivalConfig arrivals = config.arrivals;
  std::unique_ptr<ArrivalProcess> process;
  double used_gap = 0.0;
  if (config.arrival == ArrivalKind::kNone) {
    throw std::invalid_argument("run_stream: arrival kind must be set");
  }
  if (config.arrival == ArrivalKind::kTrace) {
    if (config.trace_path.empty()) {
      throw std::invalid_argument(
          "run_stream: trace arrivals need a trace_path");
    }
    process = make_trace_arrivals(load_arrival_trace(config.trace_path));
  } else {
    if (config.load > 0.0) {
      const double mean_work = calibrate_mean_work(factory, seed);
      const double scale = mean_work_scale(config.arrival, arrivals);
      arrivals.mean_gap = std::clamp(
          mean_work * scale /
              (config.load * static_cast<double>(config.processors)),
          1.0, 1e12);
    }
    process = make_arrival_process(config.arrival, arrivals);
    used_gap = arrivals.mean_gap;
  }

  util::Rng arrival_rng = util::Rng::derive(seed, kArrivalStream);
  const std::uint64_t job_seed_base =
      util::Rng::derive_seed(seed, kJobSeedBase);

  OpenResult result;
  result.mean_gap = used_gap;
  OnlineStatsConfig stats_config;
  stats_config.reservoir_capacity = config.reservoir_capacity;
  stats_config.series_capacity = config.series_capacity;
  stats_config.seed = util::Rng::derive_seed(seed, kStatsSeed);
  result.stats = OnlineStats(stats_config);

  obs::EventBus* const bus =
      config.bus != nullptr && config.bus->active() ? config.bus : nullptr;
  if (bus != nullptr) {
    obs::Event start;
    start.kind = obs::EventKind::kRunStart;
    start.processors = config.processors;
    start.quantum_length = length;
    start.job_count = config.jobs_total;
    bus->publish(start);
  }

  std::vector<Slot> slots;
  slots.reserve(max_active);
  std::vector<std::size_t> free_slots;
  std::deque<Pending> backlog;
  std::vector<int> requests;
  std::vector<std::size_t> active_idx;
  std::vector<std::pair<std::size_t, sched::QuantumStats>> feedback;

  std::int64_t generated = 0;
  bool have_peek = false;
  Arrival peek;
  dag::Steps latest_release = 0;
  dag::TaskCount admitted_work = 0;
  std::size_t active_count = 0;
  dag::Steps now = 0;

  auto in_system = [&]() {
    return static_cast<std::int64_t>(active_count + backlog.size());
  };

  // Folds a finished job into the statistics and recycles its slot.
  auto retire = [&](std::size_t slot_index, dag::Steps completion) {
    Slot& slot = slots[slot_index];
    const dag::TaskCount work = slot.job->completed_work();
    result.stats.record_completion(slot.release, completion,
                                   slot.job->critical_path(), work,
                                   slot.waste);
    result.total_work += work;
    result.total_waste += slot.waste;
    result.makespan = std::max(result.makespan, completion);
    ++result.completed;
    const std::int64_t job_index = slot.index;
    const dag::Steps response = completion - slot.release;
    slot.job.reset();
    slot.active = false;
    slot.index = -1;
    --active_count;
    free_slots.push_back(slot_index);
    if (bus != nullptr) {
      obs::Event e;
      e.kind = obs::EventKind::kJobComplete;
      e.step = completion;
      e.job = job_index;
      bus->publish(e);
      publish_departure(bus, job_index, completion, response, work,
                        in_system());
    }
  };

  while (result.completed < config.jobs_total) {
    if (config.cancel != nullptr && config.cancel->cancelled()) {
      throw util::CancelledError(
          std::string("run_stream: run cancelled (") +
              util::to_string(config.cancel->cause()) + ")",
          config.cancel->cause());
    }

    // Materialize every arrival released by this boundary.  Only one
    // undrawn arrival is ever peeked ahead, so memory tracks the backlog,
    // not the horizon.
    while (generated < config.jobs_total) {
      if (!have_peek) {
        peek = process->next(arrival_rng);
        have_peek = true;
      }
      if (peek.release > now) {
        break;
      }
      backlog.push_back(Pending{peek.release, peek.work_scale, generated});
      latest_release = std::max(latest_release, peek.release);
      ++generated;
      have_peek = false;
      result.in_system_high_water =
          std::max(result.in_system_high_water, in_system());
      if (bus != nullptr) {
        publish_arrival(bus, backlog.back(), in_system());
      }
    }

    // FCFS admission into recycled slots, up to the cap.  The backlog is
    // release-ordered because arrival streams are monotone.
    while (active_count < max_active && !backlog.empty()) {
      const Pending pending = backlog.front();
      backlog.pop_front();
      std::size_t slot_index;
      if (!free_slots.empty()) {
        slot_index = free_slots.back();
        free_slots.pop_back();
      } else {
        slot_index = slots.size();
        slots.emplace_back();
        slots[slot_index].request = request_prototype.clone();
      }
      Slot& slot = slots[slot_index];
      util::Rng job_rng = util::Rng::derive(
          job_seed_base, static_cast<std::uint64_t>(pending.index));
      slot.job =
          factory(job_rng, Arrival{pending.release, pending.work_scale});
      if (slot.job == nullptr) {
        throw std::logic_error("run_stream: job factory returned null");
      }
      slot.index = pending.index;
      slot.release = pending.release;
      slot.waste = 0;
      slot.previous_allotment = 0;
      slot.local_quantum = 0;
      slot.request->reset();
      slot.desire = slot.request->first_request();
      slot.active = true;
      ++active_count;
      ++result.admitted;
      admitted_work += slot.job->total_work();
      if (bus != nullptr) {
        obs::Event e;
        e.kind = obs::EventKind::kJobAdmit;
        e.step = now;
        e.job = pending.index;
        e.desire = slot.desire;
        bus->publish(e);
      }
      if (slot.job->finished()) {
        // A zero-work job completes the instant it is admitted.
        retire(slot_index, now);
      }
    }

    // Incremental safety bound: grows with the work the stream has
    // admitted, mirroring the closed engines' derived bound.
    const dag::Steps bound =
        config.max_steps > 0
            ? config.max_steps
            : latest_release + 8 * admitted_work + 64 * length;

    if (active_count == 0) {
      if (result.completed == config.jobs_total) {
        break;
      }
      // Nothing in the system but arrivals remain: idle-skip whole quanta
      // to the next release.
      const dag::Steps next_release = have_peek ? peek.release : bound;
      const dag::Steps gap = next_release > now ? next_release - now : 0;
      now += std::max<dag::Steps>(1, gap / length) * length;
      if (now >= bound) {
        throw std::runtime_error("run_stream: exceeded step bound");
      }
      continue;
    }

    result.stats.record_queue_depth(now, in_system());

    ++result.quanta;
    requests.assign(slots.size(), 0);
    active_idx.clear();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].active) {
        requests[i] = slots[i].desire;
        active_idx.push_back(i);
      }
    }
    const int pool = allocator.pool(config.processors);
    std::vector<int> allotments;
    if (allocator.size_aware()) {
      std::vector<double> remaining(slots.size(), 0.0);
      for (const std::size_t i : active_idx) {
        remaining[i] = static_cast<double>(slots[i].job->total_work() -
                                           slots[i].job->completed_work());
      }
      allotments =
          allocator.allocate_sized(requests, remaining, config.processors);
    } else {
      allotments = allocator.allocate(requests, config.processors);
    }
    int assigned = 0;
    for (const int a : allotments) {
      assigned += a;
    }
    const int leftover = std::max(0, pool - assigned);
    if (bus != nullptr) {
      obs::Event e;
      e.kind = obs::EventKind::kAllocation;
      e.step = now;
      e.pool = pool;
      e.assigned = assigned;
      e.active_jobs = static_cast<std::int64_t>(active_idx.size());
      bus->publish(e);
    }

    feedback.clear();
    for (const std::size_t i : active_idx) {
      Slot& slot = slots[i];
      const int allotment = allotments[i];
      ++slot.local_quantum;
      const dag::Steps penalty = sim::reallocation_penalty(
          slot.previous_allotment, allotment,
          config.reallocation_cost_per_proc, length);
      slot.previous_allotment = allotment;
      const sched::QuantumStats stats = sim::quantum_eval::run_allotted_quantum(
          *slot.job, execution, slot.local_quantum, slot.desire, allotment,
          length, penalty, leftover, now);
      slot.waste += stats.waste();
      if (bus != nullptr) {
        obs::Event e;
        e.kind = obs::EventKind::kQuantum;
        e.step = stats.start_step;
        e.job = slot.index;
        e.stats = &stats;
        bus->publish(e);
      }
      if (stats.finished) {
        retire(i, now + stats.steps_used);
      } else {
        feedback.emplace_back(i, stats);
      }
    }

    now += length;
    if (result.completed < config.jobs_total && now >= bound) {
      throw std::runtime_error(
          "run_stream: exceeded step bound; open stream is not making "
          "progress");
    }
    // Quantum-boundary feedback, deferred past the bound check like the
    // closed engines so a stalled run throws before touching the request
    // policies again.
    for (const auto& [slot_index, stats] : feedback) {
      Slot& slot = slots[slot_index];
      slot.desire = slot.request->next_request(stats);
    }
  }

  if (bus != nullptr) {
    obs::Event summary;
    summary.kind = obs::EventKind::kOpenSummary;
    summary.step = result.makespan;
    summary.open_admitted = result.admitted;
    summary.open_completed = result.completed;
    summary.open_high_water = result.in_system_high_water;
    summary.open_stats_merges = result.stats.merges();
    bus->publish(summary);
    obs::Event end;
    end.kind = obs::EventKind::kRunEnd;
    end.step = result.makespan;
    end.makespan = result.makespan;
    bus->publish(end);
  }
  return result;
}

}  // namespace abg::open
