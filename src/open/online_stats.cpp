#include "open/online_stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace abg::open {

Reservoir::Reservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  if (capacity_ == 0) {
    throw std::invalid_argument("Reservoir: capacity must be >= 1");
  }
  samples_.reserve(capacity_);
}

void Reservoir::add(double value) {
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.push_back(value);
    return;
  }
  // Algorithm R: the new value replaces a uniformly chosen slot with
  // probability capacity / seen, keeping the retained set a uniform
  // sample of everything observed.
  const std::int64_t slot = rng_.uniform_int(0, seen_ - 1);
  if (slot < static_cast<std::int64_t>(capacity_)) {
    samples_[static_cast<std::size_t>(slot)] = value;
  }
}

double Reservoir::quantile(double q) const {
  return util::quantile(samples_, q);
}

void Reservoir::merge(const Reservoir& other) {
  std::vector<double> combined;
  combined.reserve(samples_.size() + other.samples_.size());
  combined.insert(combined.end(), samples_.begin(), samples_.end());
  combined.insert(combined.end(), other.samples_.begin(),
                  other.samples_.end());
  // Sorting makes the union order-independent; systematic thinning over
  // the sorted array keeps the quantile structure and stays commutative.
  std::sort(combined.begin(), combined.end());
  if (combined.size() > capacity_) {
    std::vector<double> thinned;
    thinned.reserve(capacity_);
    const std::size_t n = combined.size();
    for (std::size_t i = 0; i < capacity_; ++i) {
      // Evenly spaced order statistics: index i maps to the rank
      // round(i * (n - 1) / (capacity - 1)).
      const std::size_t rank =
          capacity_ > 1 ? (i * (n - 1) + (capacity_ - 1) / 2) /
                              (capacity_ - 1)
                        : (n - 1) / 2;
      thinned.push_back(combined[rank]);
    }
    combined = std::move(thinned);
  }
  samples_ = std::move(combined);
  seen_ += other.seen_;
}

DownsampledSeries::DownsampledSeries(std::size_t capacity)
    : capacity_(capacity) {
  if (capacity_ < 2) {
    throw std::invalid_argument("DownsampledSeries: capacity must be >= 2");
  }
  points_.reserve(capacity_);
}

void DownsampledSeries::add(dag::Steps step, double value) {
  const dag::Steps index = observed_++;
  if (index % stride_ != 0) {
    return;
  }
  if (points_.size() == capacity_) {
    // Compact: keep every other retained point and double the stride, so
    // the series always spans [first observation, now].
    std::size_t kept = 0;
    for (std::size_t i = 0; i < points_.size(); i += 2) {
      points_[kept++] = points_[i];
    }
    points_.resize(kept);
    stride_ *= 2;
    if (index % stride_ != 0) {
      return;
    }
  }
  points_.push_back(Point{step, value});
}

util::Json DownsampledSeries::to_json() const {
  util::Json series = util::Json::array();
  for (const Point& p : points_) {
    series.push(util::Json::object()
                    .set("step", util::Json::integer(p.step))
                    .set("value", util::Json::number(p.value)));
  }
  return series;
}

namespace {

/// Reservoir seeds are derived per role so the three sample streams stay
/// independent under one user-facing seed.
enum ReservoirRole : std::uint64_t {
  kResponseRole = 1,
  kSlowdownRole = 2,
  kQueueRole = 3,
};

}  // namespace

OnlineStats::OnlineStats(const OnlineStatsConfig& config)
    : response_sample_(config.reservoir_capacity,
                       util::Rng::derive_seed(config.seed, kResponseRole)),
      slowdown_sample_(config.reservoir_capacity,
                       util::Rng::derive_seed(config.seed, kSlowdownRole)),
      queue_sample_(config.reservoir_capacity,
                    util::Rng::derive_seed(config.seed, kQueueRole)),
      queue_series_(config.series_capacity) {}

void OnlineStats::record_completion(dag::Steps release,
                                    dag::Steps completion,
                                    dag::Steps critical_path,
                                    dag::TaskCount work,
                                    dag::TaskCount waste) {
  if (completion < release) {
    throw std::invalid_argument(
        "OnlineStats: completion precedes release");
  }
  ++completed_;
  total_work_ += work;
  total_waste_ += waste;
  const auto response = static_cast<double>(completion - release);
  const double ideal =
      static_cast<double>(std::max<dag::Steps>(1, critical_path));
  response_.add(response);
  response_sample_.add(response);
  const double slowdown = response / ideal;
  slowdown_.add(slowdown);
  slowdown_sample_.add(slowdown);
}

void OnlineStats::record_queue_depth(dag::Steps step,
                                     std::int64_t in_system) {
  const auto depth = static_cast<double>(in_system);
  queue_depth_.add(depth);
  queue_sample_.add(depth);
  queue_series_.add(step, depth);
}

void OnlineStats::merge(const OnlineStats& other) {
  completed_ += other.completed_;
  total_work_ += other.total_work_;
  total_waste_ += other.total_waste_;
  response_.merge(other.response_);
  slowdown_.merge(other.slowdown_);
  queue_depth_.merge(other.queue_depth_);
  response_sample_.merge(other.response_sample_);
  slowdown_sample_.merge(other.slowdown_sample_);
  queue_sample_.merge(other.queue_sample_);
  merges_ += 1 + other.merges_;
}

namespace {

util::Json distribution_json(const util::RunningStats& stats,
                             const Reservoir& sample) {
  return util::Json::object()
      .set("mean", util::Json::number(stats.mean()))
      .set("max", util::Json::number(stats.count() > 0 ? stats.max() : 0.0))
      .set("p50", util::Json::number(sample.quantile(0.50)))
      .set("p95", util::Json::number(sample.quantile(0.95)))
      .set("p99", util::Json::number(sample.quantile(0.99)));
}

}  // namespace

util::Json OnlineStats::to_json() const {
  util::Json j = util::Json::object();
  j.set("completed", util::Json::integer(completed_))
      .set("total_work",
           util::Json::integer(static_cast<std::int64_t>(total_work_)))
      .set("total_waste",
           util::Json::integer(static_cast<std::int64_t>(total_waste_)))
      .set("response", distribution_json(response_, response_sample_))
      .set("slowdown", distribution_json(slowdown_, slowdown_sample_))
      .set("queue_depth", distribution_json(queue_depth_, queue_sample_))
      .set("queue_series", queue_series_.to_json());
  return j;
}

}  // namespace abg::open
