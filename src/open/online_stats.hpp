// Constant-memory statistics for open-system streams.
//
// A closed run keeps every JobTrace and derives its metrics afterwards;
// an open run pushing 10^6-10^7 jobs cannot.  OnlineStats is the folding
// layer the streaming driver retires completed jobs into: exact one-pass
// aggregates (Welford mean/variance, min/max, totals) ride next to
// fixed-capacity reservoir samples for the percentile questions
// (response-time p50/p95/p99, slowdown tails) and a stride-doubling
// queue-depth time series.  Memory is O(reservoir + series capacity) —
// constants — regardless of how many jobs flow through.
//
// Accuracy: a reservoir of n samples estimates the q-quantile with rank
// standard error ~= sqrt(q(1-q)/n); at the default n = 4096 that is
// +-0.8% of rank at the median and +-0.16% at p99.  Estimates are exact
// while the stream is shorter than the capacity.
//
// Determinism: sampling decisions come from a private Rng seeded at
// construction, so a stream's retained sample set is a pure function of
// (seed, observation sequence) — thread-count independent because each
// open run owns exactly one OnlineStats.  merge() is commutative by
// construction (the merged reservoir is a systematic subsample of the
// *sorted* union), so sharded aggregation cannot depend on merge order.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/job.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace abg::open {

/// Fixed-capacity uniform sample of a stream (Algorithm R) with
/// deterministic replacement draws.
class Reservoir {
 public:
  Reservoir(std::size_t capacity, std::uint64_t seed);

  /// Observes one value.
  void add(double value);

  /// Values observed (not retained) so far.
  std::int64_t seen() const { return seen_; }

  /// Retained sample count (== seen() until capacity is exceeded).
  std::size_t size() const { return samples_.size(); }

  /// q-quantile estimate by linear interpolation over the retained
  /// sample; exact while seen() <= capacity; NaN when empty.
  double quantile(double q) const;

  /// Commutative merge: the union of both retained samples is sorted and,
  /// when over capacity, thinned to evenly spaced order statistics.  The
  /// result is identical for a.merge(b) and b.merge(a).
  void merge(const Reservoir& other);

  /// Retained samples (unsorted; test hook).
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  std::size_t capacity_;
  std::int64_t seen_ = 0;
  util::Rng rng_;
};

/// Bounded time series: keeps every stride-th observation and doubles the
/// stride (dropping every other retained point) whenever capacity would
/// be exceeded, so the series spans the whole run at O(capacity) memory.
class DownsampledSeries {
 public:
  explicit DownsampledSeries(std::size_t capacity);

  void add(dag::Steps step, double value);

  struct Point {
    dag::Steps step = 0;
    double value = 0.0;
  };
  const std::vector<Point>& points() const { return points_; }
  dag::Steps stride() const { return stride_; }

  /// [{"step":...,"value":...}, ...] in step order.
  util::Json to_json() const;

 private:
  std::vector<Point> points_;
  std::size_t capacity_;
  dag::Steps stride_ = 1;
  dag::Steps observed_ = 0;
};

/// Knobs of the statistics layer.
struct OnlineStatsConfig {
  std::size_t reservoir_capacity = 4096;
  std::size_t series_capacity = 512;
  /// Seed of the reservoirs' private replacement streams.
  std::uint64_t seed = 0;
};

/// The per-run folding accumulator the streaming driver retires jobs into.
class OnlineStats {
 public:
  explicit OnlineStats(const OnlineStatsConfig& config = {});

  /// Folds one completed job: response = completion - release; slowdown =
  /// response / max(1, critical_path) (critical path = the job's minimum
  /// possible running time on unbounded processors).
  void record_completion(dag::Steps release, dag::Steps completion,
                         dag::Steps critical_path, dag::TaskCount work,
                         dag::TaskCount waste);

  /// Samples the jobs-in-system count at a quantum boundary.
  void record_queue_depth(dag::Steps step, std::int64_t in_system);

  /// Completed jobs folded in.
  std::int64_t completed() const { return completed_; }

  dag::TaskCount total_work() const { return total_work_; }
  dag::TaskCount total_waste() const { return total_waste_; }

  const util::RunningStats& response() const { return response_; }
  const util::RunningStats& slowdown() const { return slowdown_; }
  const util::RunningStats& queue_depth() const { return queue_depth_; }

  double response_quantile(double q) const {
    return response_sample_.quantile(q);
  }
  double slowdown_quantile(double q) const {
    return slowdown_sample_.quantile(q);
  }
  double queue_depth_quantile(double q) const {
    return queue_sample_.quantile(q);
  }

  const DownsampledSeries& queue_series() const { return queue_series_; }

  /// Times merge() has folded another instance into this one (the
  /// open.stats_merges counter).
  std::int64_t merges() const { return merges_; }

  /// Folds `other` in: totals add, Welford accumulators combine,
  /// reservoirs merge commutatively.  The queue-depth *series* stays this
  /// instance's own (two shards' timelines do not interleave meaningfully
  /// at constant memory); the queue-depth aggregates do merge.
  void merge(const OnlineStats& other);

  /// Deterministic summary object (used by abg_sim's --open report).
  util::Json to_json() const;

 private:
  std::int64_t completed_ = 0;
  dag::TaskCount total_work_ = 0;
  dag::TaskCount total_waste_ = 0;
  util::RunningStats response_;
  util::RunningStats slowdown_;
  util::RunningStats queue_depth_;
  Reservoir response_sample_;
  Reservoir slowdown_sample_;
  Reservoir queue_sample_;
  DownsampledSeries queue_series_;
  std::int64_t merges_ = 0;
};

}  // namespace abg::open
