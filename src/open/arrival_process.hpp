// Continuous arrival generation for the open-system engine.
//
// Closed experiments (Figures 5/6) hand the simulator a finite job set up
// front; the open system instead draws an unbounded stream of arrivals
// from an ArrivalProcess and admits them as simulated time reaches their
// release steps.  The process abstracts *when* jobs arrive and *how big*
// they are relative to the calibrated mean (work_scale); the streaming
// driver (open/streaming_engine.hpp) turns each arrival into a concrete
// DAG via a job factory.
//
// Four generator families cover the standard open-system workloads plus a
// replay path:
//   * Poisson      — memoryless gaps (geometric, the discrete analogue),
//                    extending workload::poisson_releases to a stream.
//   * MMPP         — 2-state Markov-modulated Poisson (bursty): gaps
//                    alternate between a burst regime and a calm regime
//                    whose factors average to 1, so the stationary mean
//                    gap equals `mean_gap` regardless of burstiness.
//   * Diurnal      — Poisson gaps modulated by a triangle wave of the
//                    given period/amplitude (a deterministic stand-in for
//                    a sinusoidal day/night cycle; no libm in the mean
//                    path keeps golden fixtures portable).
//   * Heavy-tail   — Poisson gaps with bounded-Pareto work_scale, the
//                    M/G-style size distribution of Berg et al.'s
//                    parallel-scheduling studies.
//   * Trace        — replays a JSONL trace file; when the stream needs
//                    more arrivals than the trace holds, the trace tiles
//                    with a cumulative release offset.
//
// Determinism contract: a process draws only from the Rng passed to
// next(), so (kind, config, seed) fully determines the stream — the same
// Rng::derive discipline every other generator in this library follows.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dag/job.hpp"
#include "util/rng.hpp"

namespace abg::open {

/// Arrival-process families.  kNone is the "closed system" sentinel used
/// by exp::RunSpec (an open axis that is not engaged).
enum class ArrivalKind {
  kNone,
  kPoisson,
  kMmpp,
  kDiurnal,
  kHeavyTail,
  kTrace,
};

/// Canonical lower-case names ("none", "poisson", "mmpp", "diurnal",
/// "heavytail", "trace") used in CLI flags and JSON records.
std::string to_string(ArrivalKind kind);

/// Parses the canonical names; throws std::invalid_argument on unknown.
ArrivalKind arrival_kind_from_name(const std::string& name);

/// One arrival: an absolute release step plus the job-size multiplier the
/// job factory applies to its calibrated mean job (1.0 = an average job).
struct Arrival {
  dag::Steps release = 0;
  double work_scale = 1.0;
};

/// Tunables of the generator families (unused members are ignored).
struct ArrivalConfig {
  /// Stationary mean inter-arrival gap in steps (>= 1; gaps are whole
  /// steps, so sub-step means would silently degenerate to batched
  /// release — the same validation rule as workload::poisson_releases).
  double mean_gap = 1000.0;
  /// kMmpp: burst-regime gaps have mean mean_gap / burst_factor; the calm
  /// regime compensates with mean_gap * (2 - 1/burst_factor) so the
  /// 50/50-stationary mean stays mean_gap.  Requires burst_factor >= 1.
  double burst_factor = 4.0;
  /// kMmpp: per-arrival probability of switching regimes (in (0, 1]).
  double switch_probability = 0.05;
  /// kDiurnal: modulation period in steps (0 derives 64 * mean_gap) and
  /// peak-to-mean amplitude in [0, 1): instantaneous mean gap sweeps
  /// through [mean_gap * (1 - amplitude), mean_gap * (1 + amplitude)].
  dag::Steps period = 0;
  double amplitude = 0.8;
  /// kHeavyTail: bounded-Pareto work_scale with shape tail_alpha (> 0) on
  /// [1, tail_cap]; mean ≈ α/(α−1) for α > 1 with a generous cap.
  double tail_alpha = 1.5;
  double tail_cap = 64.0;
};

/// A stream of arrivals with monotone non-decreasing release steps.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Produces the next arrival, drawing randomness only from `rng`.
  virtual Arrival next(util::Rng& rng) = 0;

  /// Rewinds the stream to step 0 (trace replay restarts; generators
  /// reset their regime state — their randomness lives in the caller's
  /// Rng, which the caller re-seeds).
  virtual void reset() = 0;

  /// Canonical family name (matches to_string of the kind).
  virtual std::string_view name() const = 0;
};

/// Builds a generator of the given kind; kTrace is built separately from
/// a loaded trace (make_trace_arrivals) and kNone is rejected.  Throws
/// std::invalid_argument on out-of-range config values.
std::unique_ptr<ArrivalProcess> make_arrival_process(
    ArrivalKind kind, const ArrivalConfig& config);

/// Replays `entries` in order; once exhausted the trace tiles, shifting
/// every repetition by (last release + mean observed gap + 1) so releases
/// stay strictly ordered across repetitions.  Requires a non-empty,
/// monotone non-decreasing trace with non-negative releases and positive,
/// finite work scales (validated; throws std::invalid_argument).
std::unique_ptr<ArrivalProcess> make_trace_arrivals(
    std::vector<Arrival> entries);

/// Reads a JSONL arrival trace: one {"release":N[,"work_scale":X]} object
/// per line (blank lines ignored), releases monotone non-decreasing.
/// Throws std::invalid_argument naming the offending line on malformed
/// input.
std::vector<Arrival> read_arrival_trace(std::istream& in);

/// Loads read_arrival_trace from a file; throws std::runtime_error when
/// the file cannot be opened.
std::vector<Arrival> load_arrival_trace(const std::string& path);

/// Writes the JSONL form read_arrival_trace parses (the round-trip is
/// exact: releases are integers and work scales shortest-form doubles).
void write_arrival_trace(std::ostream& out,
                         const std::vector<Arrival>& entries);

}  // namespace abg::open
