#include "open/arrival_process.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/json.hpp"

namespace abg::open {

namespace {

/// Largest mean gap the geometric truncation bound (mean * 64 + 64) can
/// represent without overflowing dag::Steps — the same cast-safety rule
/// workload::poisson_releases enforces.
constexpr double kMaxMeanGap = 1e12;

void validate_mean_gap(double mean_gap, const char* context) {
  if (!(mean_gap >= 1.0) || !(mean_gap <= kMaxMeanGap)) {
    throw std::invalid_argument(
        std::string(context) +
        ": mean_gap must be in [1, 1e12] steps (gaps are whole steps; "
        "sub-step means degenerate to batched release)");
  }
}

/// Geometric inter-arrival gap with the given mean, truncated far into
/// the tail so a single draw cannot stall the stream.
dag::Steps geometric_gap(util::Rng& rng, double mean) {
  const double p = 1.0 / (1.0 + mean);
  return rng.geometric(p, static_cast<dag::Steps>(mean * 64.0) + 64);
}

class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(const ArrivalConfig& config)
      : mean_gap_(config.mean_gap) {
    validate_mean_gap(mean_gap_, "PoissonArrivals");
  }

  Arrival next(util::Rng& rng) override {
    const Arrival arrival{now_, 1.0};
    now_ += geometric_gap(rng, mean_gap_);
    return arrival;
  }

  void reset() override { now_ = 0; }
  std::string_view name() const override { return "poisson"; }

 private:
  double mean_gap_;
  dag::Steps now_ = 0;
};

class MmppArrivals final : public ArrivalProcess {
 public:
  explicit MmppArrivals(const ArrivalConfig& config)
      : mean_gap_(config.mean_gap),
        switch_probability_(config.switch_probability) {
    validate_mean_gap(mean_gap_, "MmppArrivals");
    if (!(config.burst_factor >= 1.0)) {
      throw std::invalid_argument("MmppArrivals: burst_factor must be >= 1");
    }
    if (!(switch_probability_ > 0.0) || !(switch_probability_ <= 1.0)) {
      throw std::invalid_argument(
          "MmppArrivals: switch_probability must be in (0, 1]");
    }
    // Regime gap factors averaging to 1 under the symmetric switch
    // chain's 50/50 stationary distribution, so the long-run mean gap is
    // mean_gap for any burst factor.
    burst_gap_ = mean_gap_ / config.burst_factor;
    calm_gap_ = mean_gap_ * (2.0 - 1.0 / config.burst_factor);
  }

  Arrival next(util::Rng& rng) override {
    const Arrival arrival{now_, 1.0};
    now_ += geometric_gap(rng, bursting_ ? burst_gap_ : calm_gap_);
    if (rng.bernoulli(switch_probability_)) {
      bursting_ = !bursting_;
    }
    return arrival;
  }

  void reset() override {
    now_ = 0;
    bursting_ = true;
  }

  std::string_view name() const override { return "mmpp"; }

 private:
  double mean_gap_;
  double switch_probability_;
  double burst_gap_ = 0.0;
  double calm_gap_ = 0.0;
  dag::Steps now_ = 0;
  /// Starts in the burst regime (deterministic; reset() restores it).
  bool bursting_ = true;
};

class DiurnalArrivals final : public ArrivalProcess {
 public:
  explicit DiurnalArrivals(const ArrivalConfig& config)
      : mean_gap_(config.mean_gap), amplitude_(config.amplitude) {
    validate_mean_gap(mean_gap_, "DiurnalArrivals");
    if (!(amplitude_ >= 0.0) || !(amplitude_ < 1.0)) {
      throw std::invalid_argument(
          "DiurnalArrivals: amplitude must be in [0, 1)");
    }
    period_ = config.period > 0
                  ? config.period
                  : static_cast<dag::Steps>(64.0 * mean_gap_);
    if (period_ < 2) {
      throw std::invalid_argument("DiurnalArrivals: period must be >= 2");
    }
  }

  Arrival next(util::Rng& rng) override {
    const Arrival arrival{now_, 1.0};
    // Triangle wave in [-1, 1] over the period: exact integer arithmetic,
    // so the modulation factor is bit-identical on every platform.
    const dag::Steps phase = now_ % period_;
    const dag::Steps half = period_ / 2;
    const double tri =
        phase < half
            ? -1.0 + 2.0 * static_cast<double>(phase) /
                         static_cast<double>(half)
            : 1.0 - 2.0 * static_cast<double>(phase - half) /
                        static_cast<double>(period_ - half);
    const double gap_mean = mean_gap_ * (1.0 + amplitude_ * tri);
    now_ += geometric_gap(rng, std::max(1.0, gap_mean));
    return arrival;
  }

  void reset() override { now_ = 0; }
  std::string_view name() const override { return "diurnal"; }

 private:
  double mean_gap_;
  double amplitude_;
  dag::Steps period_ = 0;
  dag::Steps now_ = 0;
};

class HeavyTailArrivals final : public ArrivalProcess {
 public:
  explicit HeavyTailArrivals(const ArrivalConfig& config)
      : mean_gap_(config.mean_gap),
        alpha_(config.tail_alpha),
        cap_(config.tail_cap) {
    validate_mean_gap(mean_gap_, "HeavyTailArrivals");
    if (!(alpha_ > 0.0)) {
      throw std::invalid_argument(
          "HeavyTailArrivals: tail_alpha must be > 0");
    }
    if (!(cap_ >= 1.0)) {
      throw std::invalid_argument("HeavyTailArrivals: tail_cap must be >= 1");
    }
  }

  Arrival next(util::Rng& rng) override {
    // Bounded Pareto on [1, cap] by inverse CDF.
    const double u = rng.uniform01();
    const double cap_term = std::pow(cap_, -alpha_);
    const double scale =
        std::pow(1.0 - u * (1.0 - cap_term), -1.0 / alpha_);
    const Arrival arrival{now_, std::min(scale, cap_)};
    now_ += geometric_gap(rng, mean_gap_);
    return arrival;
  }

  void reset() override { now_ = 0; }
  std::string_view name() const override { return "heavytail"; }

 private:
  double mean_gap_;
  double alpha_;
  double cap_;
  dag::Steps now_ = 0;
};

class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(std::vector<Arrival> entries)
      : entries_(std::move(entries)) {
    if (entries_.empty()) {
      throw std::invalid_argument("TraceArrivals: trace is empty");
    }
    dag::Steps previous = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Arrival& a = entries_[i];
      if (a.release < 0) {
        throw std::invalid_argument(
            "TraceArrivals: negative release at entry " + std::to_string(i));
      }
      if (a.release < previous) {
        throw std::invalid_argument(
            "TraceArrivals: releases must be monotone non-decreasing "
            "(entry " +
            std::to_string(i) + ")");
      }
      if (!(a.work_scale > 0.0) ||
          !(a.work_scale <= 1e9) ||
          std::isnan(a.work_scale)) {
        throw std::invalid_argument(
            "TraceArrivals: work_scale must be in (0, 1e9] at entry " +
            std::to_string(i));
      }
      previous = a.release;
    }
    // Tiling stride: span of the trace plus its mean gap (>= 1), so a
    // repeated trace keeps strictly increasing release steps.
    const dag::Steps span = entries_.back().release;
    const dag::Steps mean_gap =
        span / static_cast<dag::Steps>(entries_.size());
    stride_ = span + std::max<dag::Steps>(1, mean_gap);
  }

  Arrival next(util::Rng& /*rng*/) override {
    Arrival arrival = entries_[cursor_];
    arrival.release += offset_;
    if (++cursor_ == entries_.size()) {
      cursor_ = 0;
      offset_ += stride_;
    }
    return arrival;
  }

  void reset() override {
    cursor_ = 0;
    offset_ = 0;
  }

  std::string_view name() const override { return "trace"; }

 private:
  std::vector<Arrival> entries_;
  std::size_t cursor_ = 0;
  dag::Steps offset_ = 0;
  dag::Steps stride_ = 1;
};

}  // namespace

std::string to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kNone:
      return "none";
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kMmpp:
      return "mmpp";
    case ArrivalKind::kDiurnal:
      return "diurnal";
    case ArrivalKind::kHeavyTail:
      return "heavytail";
    case ArrivalKind::kTrace:
      return "trace";
  }
  return "none";
}

ArrivalKind arrival_kind_from_name(const std::string& name) {
  if (name == "none") {
    return ArrivalKind::kNone;
  }
  if (name == "poisson") {
    return ArrivalKind::kPoisson;
  }
  if (name == "mmpp") {
    return ArrivalKind::kMmpp;
  }
  if (name == "diurnal") {
    return ArrivalKind::kDiurnal;
  }
  if (name == "heavytail") {
    return ArrivalKind::kHeavyTail;
  }
  if (name == "trace") {
    return ArrivalKind::kTrace;
  }
  throw std::invalid_argument(
      "unknown arrival process '" + name +
      "' (expected none|poisson|mmpp|diurnal|heavytail|trace)");
}

std::unique_ptr<ArrivalProcess> make_arrival_process(
    ArrivalKind kind, const ArrivalConfig& config) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonArrivals>(config);
    case ArrivalKind::kMmpp:
      return std::make_unique<MmppArrivals>(config);
    case ArrivalKind::kDiurnal:
      return std::make_unique<DiurnalArrivals>(config);
    case ArrivalKind::kHeavyTail:
      return std::make_unique<HeavyTailArrivals>(config);
    case ArrivalKind::kTrace:
      throw std::invalid_argument(
          "make_arrival_process: build trace arrivals via "
          "make_trace_arrivals(load_arrival_trace(path))");
    case ArrivalKind::kNone:
      break;
  }
  throw std::invalid_argument(
      "make_arrival_process: kind 'none' names a closed run, not a "
      "generator");
}

std::unique_ptr<ArrivalProcess> make_trace_arrivals(
    std::vector<Arrival> entries) {
  return std::make_unique<TraceArrivals>(std::move(entries));
}

std::vector<Arrival> read_arrival_trace(std::istream& in) {
  std::vector<Arrival> entries;
  std::string line;
  std::size_t line_number = 0;
  dag::Steps previous = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    util::Json record = util::Json::null();
    try {
      record = util::Json::parse(line);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("arrival trace line " +
                                  std::to_string(line_number) + ": " +
                                  e.what());
    }
    if (!record.is_object()) {
      throw std::invalid_argument("arrival trace line " +
                                  std::to_string(line_number) +
                                  ": expected an object");
    }
    Arrival arrival;
    arrival.release = record.at("release").as_integer();
    const util::Json* scale = record.find("work_scale");
    arrival.work_scale = scale != nullptr ? scale->as_number() : 1.0;
    if (arrival.release < 0) {
      throw std::invalid_argument("arrival trace line " +
                                  std::to_string(line_number) +
                                  ": negative release");
    }
    if (arrival.release < previous) {
      throw std::invalid_argument(
          "arrival trace line " + std::to_string(line_number) +
          ": releases must be monotone non-decreasing");
    }
    previous = arrival.release;
    entries.push_back(arrival);
  }
  return entries;
}

std::vector<Arrival> load_arrival_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("arrival trace not readable: " + path);
  }
  return read_arrival_trace(in);
}

void write_arrival_trace(std::ostream& out,
                         const std::vector<Arrival>& entries) {
  for (const Arrival& a : entries) {
    util::Json record = util::Json::object();
    record.set("release", util::Json::integer(a.release));
    // The default scale is omitted so pure-timing traces stay minimal and
    // the round-trip through read_arrival_trace is exact either way.
    if (a.work_scale != 1.0) {
      record.set("work_scale", util::Json::number(a.work_scale));
    }
    record.write(out);
    out << '\n';
  }
}

}  // namespace abg::open
