// Open-system streaming driver: continuous arrivals over the synchronous
// boundary model, with O(jobs-in-system) memory.
//
// The closed engines (sim/engine_core.hpp) materialize every submission
// up front, keep one JobRuntime per submitted job for the whole run, and
// retain every JobTrace in the result — all O(total jobs).  The streaming
// driver keeps the same per-boundary discipline as run_global_quanta
// (admit FCFS up to the cap, allocate once over the active requests, run
// each active job one quantum, feed completed stats to the request
// policies) but bounds memory by the number of jobs *in the system*:
//
//   * Arrivals are generated lazily from an ArrivalProcess — only the
//     next undrawn arrival and a backlog of released-but-waiting stubs
//     ({release, work_scale, index}; ~24 bytes each) exist at once.  The
//     backlog is jobs-in-system by definition; in an overloaded system
//     (load > 1) it grows without bound, which is queueing reality, not
//     a leak.
//   * Jobs are built (by the job factory, from the per-job stream
//     Rng::derive(run seed, job index)) only at admission, and their
//     runtime slots — job DAG, request-policy clone, accumulators — are
//     recycled through a free list the moment they complete.  At most
//     max_active slots ever exist.
//   * Completed jobs fold into open::OnlineStats (constant memory)
//     instead of accumulating traces; the result carries aggregates and
//     percentile estimates only.
//
// Determinism: every job's DAG is a pure function of (run seed, job
// index), the arrival stream is a pure function of (run seed, arrival
// role), and the driver itself is single-threaded — so a run is byte-
// reproducible at any sweep thread count, which the open golden fixtures
// pin at --jobs 1 vs --jobs 4.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "alloc/allocator.hpp"
#include "dag/job.hpp"
#include "open/arrival_process.hpp"
#include "open/online_stats.hpp"
#include "sched/execution_policy.hpp"
#include "sched/request_policy.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace abg::obs {
class EventBus;
}  // namespace abg::obs

namespace abg::open {

/// Builds the DAG for one arrival.  `rng` is the job's private stream
/// (Rng::derive(run seed, job index)); `arrival.work_scale` sizes the job
/// relative to the factory's mean.
using JobFactory =
    std::function<std::unique_ptr<dag::Job>(util::Rng&, const Arrival&)>;

/// Configuration of one open-system run.
struct OpenConfig {
  /// Machine size P and quantum length L (the closed engines' defaults).
  int processors = 128;
  dag::Steps quantum_length = 1000;
  /// Admission cap (0 = P, the paper's |J| <= P discipline).  Also the
  /// bound on live runtime slots.
  std::size_t max_active = 0;
  /// Arrivals to push through the system (>= 1).  The run ends when all
  /// of them have completed.
  std::int64_t jobs_total = 0;
  /// Arrival-process family and tunables; kTrace reads trace_path.
  ArrivalKind arrival = ArrivalKind::kPoisson;
  ArrivalConfig arrivals;
  std::string trace_path;
  /// Offered load rho = (arrival rate · mean job work) / P.  When > 0 the
  /// driver calibrates arrivals.mean_gap = E[T1] / (load · P) from a
  /// 64-job pre-sample of the factory (a deterministic side stream);
  /// when 0 the configured arrivals.mean_gap is used as-is.  Ignored for
  /// trace arrivals (the trace owns its timing).
  double load = 0.0;
  /// Safety bound on simulated steps.  0 derives an incremental bound
  /// (latest release seen + 8 · work admitted + 64 · L) that grows with
  /// the stream, mirroring the closed engines' formula.
  dag::Steps max_steps = 0;
  /// Reallocation overhead per moved processor (0 = overhead-free).
  dag::Steps reallocation_cost_per_proc = 0;
  /// Statistics knobs (reservoir/series capacities; the seed is derived
  /// from the run seed internally).
  std::size_t reservoir_capacity = 4096;
  std::size_t series_capacity = 512;
  /// Optional observability bus (see obs/event_bus.hpp): publishes run
  /// lifecycle, admissions, allocations, quanta, and the open arrival /
  /// departure / summary events.  Null is a strict no-op.
  obs::EventBus* bus = nullptr;
  /// Optional cooperative cancellation, polled each boundary.
  const util::CancelToken* cancel = nullptr;
};

/// Result of one open-system run: aggregates only (no per-job traces).
struct OpenResult {
  /// Arrivals admitted into the system (== jobs_total on success).
  std::int64_t admitted = 0;
  /// Jobs completed (== jobs_total on success).
  std::int64_t completed = 0;
  /// Completion step of the last job (the horizon).
  dag::Steps makespan = 0;
  /// Global quanta simulated (boundaries that ran at least one job).
  std::int64_t quanta = 0;
  /// High-water mark of jobs in the system (queued + active) — the
  /// memory-boundedness witness.
  std::int64_t in_system_high_water = 0;
  /// Work executed and processor cycles wasted, summed over all jobs.
  dag::TaskCount total_work = 0;
  dag::TaskCount total_waste = 0;
  /// Mean-gap actually used (after load calibration), for reporting.
  double mean_gap = 0.0;
  /// The folded statistics (response/slowdown percentiles, queue depth).
  OnlineStats stats;
};

/// Job factory of the default open workload: fork-join-style ProfileJobs
/// with square-wave phases sized to a few quanta, widths scaled by the
/// arrival's work_scale.  Mean work is a few hundred cycles per quantum
/// length L, so a million-job stream stays simulable.
JobFactory default_open_job_factory(dag::Steps quantum_length);

/// Mean total work of `samples` draws of the factory at work_scale 1,
/// from the deterministic calibration stream of `seed` — the E[T1] the
/// load calibration divides by.
double calibrate_mean_work(const JobFactory& factory, std::uint64_t seed,
                           int samples = 64);

/// Runs one open-system stream to completion.  `allocator` is used as-is
/// (callers decide whether to reset it); `seed` is the run seed every
/// internal stream derives from.  Throws std::invalid_argument on a bad
/// config and std::runtime_error when the safety bound is exceeded.
OpenResult run_stream(const sched::ExecutionPolicy& execution,
                      const sched::RequestPolicy& request_prototype,
                      const JobFactory& factory, alloc::Allocator& allocator,
                      const OpenConfig& config, std::uint64_t seed);

}  // namespace abg::open
