// Desire aggregation: the root of the hierarchical allocation tree.
//
// Cao & Sun's hierarchical scheduling observes that a flat allocator must
// water-fill over every concurrent job each quantum, which stops scaling in
// the tens of thousands of jobs.  The fix is a two-level tree: jobs are
// partitioned into allocation groups, each group rolls its members' desires
// up into one aggregated desire, the root divides the machine over the
// per-group desires (using any existing alloc::Allocator as the root
// policy), and each group then divides its budget over its members with its
// own allocator.  The root sees G numbers instead of N, and the G group
// problems are independent — which is what lets the sharded engine run them
// on worker threads.
//
// The flat path is the 1-group special case: with one group the root's
// water-fill is trivial, the whole machine becomes the group's budget, and
// the group allocator sees exactly the flat request vector — byte-identical
// to running that allocator directly (the equivalence the golden fixture
// pins).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/allocator.hpp"

namespace abg::hier {

/// Allocation group of a job: submission indices are dealt to groups
/// round-robin (job i -> group i mod groups).  Requires groups >= 1.
inline std::size_t group_of(std::size_t job, std::size_t groups) {
  return job % groups;
}

/// Rolls per-group desires up to one machine-level division per rebalance.
///
/// The root allocator is conservative (budget_g <= desire_g), so after its
/// water-fill any surplus means every group's desire was met in full; the
/// surplus is then spread over the groups from a rotating offset so the
/// budgets always sum to exactly the machine size.  Handing unrequested
/// processors to a group is harmless — conservative group allocators leave
/// them idle — and it is what makes the 1-group budget identically P, the
/// flat-equivalence contract.
class DesireAggregator {
 public:
  /// `groups` >= 1; `root` divides the machine over group desires and is
  /// owned (and reset) by the aggregator.
  DesireAggregator(int groups, std::unique_ptr<alloc::Allocator> root);

  int groups() const { return groups_; }

  /// Sums per-job requests into one desire per group (job i contributes to
  /// group i mod groups).  Requests beyond the caller's job count are not
  /// padded: any vector size is accepted and empty groups get desire 0.
  std::vector<int> roll_up(const std::vector<int>& requests) const;

  /// Divides `total_processors` over the group desires: root water-fill,
  /// then surplus spread from a rotating offset.  The returned budgets sum
  /// to exactly `total_processors` (when it is non-negative and there is at
  /// least one group).  Counts one rebalance.
  std::vector<int> split(const std::vector<int>& group_desires,
                         int total_processors);

  /// Number of split() calls since construction or reset().
  std::int64_t rebalances() const { return rebalances_; }

  /// Resets the root allocator, the surplus rotation and the rebalance
  /// counter.
  void reset();

  const alloc::Allocator& root() const { return *root_; }

  /// Deep copy preserving the root allocator's state and the surplus
  /// rotation, so a cloned tree continues the exact allocation sequence.
  std::unique_ptr<DesireAggregator> clone() const;

 private:
  int groups_;
  std::unique_ptr<alloc::Allocator> root_;
  std::size_t surplus_rotation_ = 0;
  std::int64_t rebalances_ = 0;
};

}  // namespace abg::hier
