// Hierarchical allocator: the allocation tree packaged as a flat
// alloc::Allocator.
//
// allocate() performs one full tree pass — roll member requests up into
// per-group desires, split the machine over the groups (DesireAggregator),
// then let each group's own allocator divide its budget over its members —
// and scatters the per-group allotments back into flat request order.  Any
// conservative, non-reserving group allocator (equi-partition, round-robin,
// weighted) keeps those properties through the tree; global fairness is
// deliberately traded away for scalability at groups > 1 (jobs in a
// contended group can get less than jobs in a quiet one), while fairness
// *within* each group still holds.  With one group the tree collapses and
// the output is byte-identical to the inner allocator alone.
//
// This class is what the property tests exercise and what a flat engine can
// use directly; the sharded engine (sim/sharded_engine.hpp) runs the same
// tree but advances the group loops on worker threads.
#pragma once

#include <string>

#include "hier/desire_aggregator.hpp"

namespace abg::hier {

/// Builds the allocator a group-level name selects: "deq" (dynamic
/// equi-partitioning) or "rr" (round-robin).  Throws std::invalid_argument
/// on anything else.
std::unique_ptr<alloc::Allocator> make_group_allocator(
    const std::string& name);

class HierarchicalAllocator final : public alloc::Allocator {
 public:
  /// A tree of `groups` groups, each running a fresh clone of `prototype`;
  /// the root runs another clone.  `groups` >= 1.
  HierarchicalAllocator(int groups, const alloc::Allocator& prototype);

  std::vector<int> allocate(const std::vector<int>& requests,
                            int total_processors) override;
  void reset() override;
  /// "hier-<groups>-<inner name>", e.g. "hier-4-equi-partition".
  std::string_view name() const override { return name_; }
  /// Deep copy preserving the root's and every group allocator's state.
  std::unique_ptr<Allocator> clone() const override;

  int groups() const { return aggregator_->groups(); }
  /// Root split count since construction or reset().
  std::int64_t rebalances() const { return aggregator_->rebalances(); }
  /// Budgets of the most recent allocate() call (empty before the first).
  const std::vector<int>& last_budgets() const { return last_budgets_; }

 private:
  HierarchicalAllocator() = default;  // for clone()

  std::unique_ptr<DesireAggregator> aggregator_;
  std::vector<std::unique_ptr<alloc::Allocator>> group_allocators_;
  std::vector<int> last_budgets_;
  std::string name_;
};

}  // namespace abg::hier
