#include "hier/hierarchical_allocator.hpp"

#include <stdexcept>

#include "alloc/equipartition.hpp"
#include "alloc/round_robin.hpp"

namespace abg::hier {

std::unique_ptr<alloc::Allocator> make_group_allocator(
    const std::string& name) {
  if (name == "deq") {
    return std::make_unique<alloc::EquiPartition>();
  }
  if (name == "rr") {
    return std::make_unique<alloc::RoundRobin>();
  }
  throw std::invalid_argument("unknown group allocator '" + name +
                              "' (expected deq|rr)");
}

HierarchicalAllocator::HierarchicalAllocator(
    int groups, const alloc::Allocator& prototype) {
  if (groups < 1) {
    throw std::invalid_argument(
        "HierarchicalAllocator: groups must be >= 1");
  }
  aggregator_ =
      std::make_unique<DesireAggregator>(groups, prototype.clone());
  group_allocators_.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    group_allocators_.push_back(prototype.clone());
  }
  name_ = "hier-" + std::to_string(groups) + "-" +
          std::string(prototype.name());
}

std::vector<int> HierarchicalAllocator::allocate(
    const std::vector<int>& requests, int total_processors) {
  alloc::validate_allocation_inputs(requests, total_processors);
  const std::size_t n = requests.size();
  const auto groups = group_allocators_.size();

  // Up: member requests per group, in submission order within the group.
  std::vector<std::vector<int>> member_requests(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    member_requests[g].reserve(n / groups + 1);
  }
  for (std::size_t i = 0; i < n; ++i) {
    member_requests[group_of(i, groups)].push_back(requests[i]);
  }
  last_budgets_ =
      aggregator_->split(aggregator_->roll_up(requests), total_processors);

  // Down: each group divides its budget with its own allocator.  Every
  // group allocator is called every quantum — including empty groups — so
  // rotation state advances identically whether or not a group currently
  // holds jobs.
  std::vector<int> allotments(n, 0);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::vector<int> group_allotment =
        group_allocators_[g]->allocate(member_requests[g], last_budgets_[g]);
    for (std::size_t k = 0; k < group_allotment.size(); ++k) {
      allotments[k * groups + g] = group_allotment[k];
    }
  }
  return allotments;
}

void HierarchicalAllocator::reset() {
  aggregator_->reset();
  for (const auto& allocator : group_allocators_) {
    allocator->reset();
  }
  last_budgets_.clear();
}

std::unique_ptr<alloc::Allocator> HierarchicalAllocator::clone() const {
  std::unique_ptr<HierarchicalAllocator> copy(new HierarchicalAllocator());
  copy->aggregator_ = aggregator_->clone();
  copy->group_allocators_.reserve(group_allocators_.size());
  for (const auto& allocator : group_allocators_) {
    copy->group_allocators_.push_back(allocator->clone());
  }
  copy->last_budgets_ = last_budgets_;
  copy->name_ = name_;
  return copy;
}

}  // namespace abg::hier
