#include "hier/desire_aggregator.hpp"

#include <stdexcept>

namespace abg::hier {

DesireAggregator::DesireAggregator(int groups,
                                   std::unique_ptr<alloc::Allocator> root)
    : groups_(groups), root_(std::move(root)) {
  if (groups_ < 1) {
    throw std::invalid_argument("DesireAggregator: groups must be >= 1");
  }
  if (root_ == nullptr) {
    throw std::invalid_argument("DesireAggregator: null root allocator");
  }
}

std::vector<int> DesireAggregator::roll_up(
    const std::vector<int>& requests) const {
  std::vector<int> desires(static_cast<std::size_t>(groups_), 0);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i] < 0) {
      throw std::invalid_argument("DesireAggregator: negative request");
    }
    desires[group_of(i, desires.size())] += requests[i];
  }
  return desires;
}

std::vector<int> DesireAggregator::split(const std::vector<int>& group_desires,
                                         int total_processors) {
  if (group_desires.size() != static_cast<std::size_t>(groups_)) {
    throw std::invalid_argument(
        "DesireAggregator::split: expected one desire per group");
  }
  std::vector<int> budgets = root_->allocate(group_desires, total_processors);
  ++rebalances_;

  int assigned = 0;
  for (const int b : budgets) {
    assigned += b;
  }
  int surplus = total_processors - assigned;
  if (surplus > 0) {
    // All desires were met (the root is conservative): spread the idle
    // remainder so budgets sum to the machine size, rotating the start of
    // the indivisible part so no group is systematically favored.
    const int share = surplus / groups_;
    int extra = surplus % groups_;
    const std::size_t offset = surplus_rotation_ % budgets.size();
    for (std::size_t k = 0; k < budgets.size(); ++k) {
      const std::size_t g = (offset + k) % budgets.size();
      budgets[g] += share;
      if (extra > 0) {
        ++budgets[g];
        --extra;
      }
    }
  }
  ++surplus_rotation_;
  return budgets;
}

void DesireAggregator::reset() {
  root_->reset();
  surplus_rotation_ = 0;
  rebalances_ = 0;
}

std::unique_ptr<DesireAggregator> DesireAggregator::clone() const {
  auto copy = std::make_unique<DesireAggregator>(groups_, root_->clone());
  copy->surplus_rotation_ = surplus_rotation_;
  copy->rebalances_ = rebalances_;
  return copy;
}

}  // namespace abg::hier
