// Routing policies: which machine of a cluster a job is placed on.
//
// The cluster driver routes every submission once, in submission order, on
// the coordinator thread before the machine loops start; migration (see
// cluster_engine.cpp) later corrects imbalance the router could not see.
// Routers are pure choosers over the per-machine load ledger the driver
// maintains — they read it, pick a machine, and the driver updates the
// ledger — so a router never observes its own side effects and identical
// inputs always produce identical placements (the determinism contract
// the unit suite pins).
//
// Policies:
//   * least-loaded   — the machine with the lowest routed-work density
//                      (assigned work / processors; ties to the lowest
//                      index).
//   * round-robin    — a rotating cursor over the machines.
//   * desire-aware   — the machine with the lowest aggregate equilibrium
//                      desire per processor.  A job's A-Control desire
//                      converges toward its average parallelism T1/T∞, so
//                      the aggregate of those equilibria is the steady
//                      processor demand the machine is heading for.
//   * class-affinity — jobs of the same class hash to the same machine
//                      (scenario job classes; unlabeled jobs fall back to
//                      a parallelism-bucket class), co-locating workloads
//                      that share a shape.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dag/job.hpp"

namespace abg::cluster {

/// Routed-load ledger of one machine, updated by the driver after every
/// placement.
struct MachineLoad {
  int processors = 0;
  /// Total work of the jobs routed here so far.
  dag::TaskCount assigned_work = 0;
  std::int64_t assigned_jobs = 0;
  /// Sum of the routed jobs' equilibrium desires.
  std::int64_t assigned_desire = 0;
};

/// One submission to place.
struct RouteRequest {
  std::size_t submission_index = 0;
  dag::TaskCount work = 0;
  dag::Steps critical_path = 0;
  dag::Steps release_step = 0;
  /// Job class label (scenario generators label their jobs; empty for
  /// unlabeled workloads).
  std::string_view job_class;
};

/// A routing policy.  route() is called once per submission, in
/// submission order, from the coordinator thread.
class Router {
 public:
  virtual ~Router() = default;
  virtual std::string_view name() const = 0;
  /// Returns the index of the chosen machine (< machines.size()).
  virtual std::size_t route(const RouteRequest& job,
                           const std::vector<MachineLoad>& machines) = 0;
};

/// Estimated steady-state A-Control desire of a job: the average
/// parallelism ceil(T1 / T∞) its desire feedback converges toward
/// (at least 1).
std::int64_t equilibrium_desire(dag::TaskCount work,
                                dag::Steps critical_path);

/// Instantiates "least-loaded" | "round-robin" | "desire-aware" |
/// "class-affinity"; throws std::invalid_argument naming the valid
/// policies otherwise.
std::unique_ptr<Router> make_router(const std::string& name);

/// The canonical policy names, in the order documented above.
const std::vector<std::string>& router_names();

}  // namespace abg::cluster
