// Datacenter shapes for the cluster simulation subsystem.
//
// A ClusterSpec is the fully resolved description the cluster driver runs
// against: N machines, each with its own processor count and an optional
// list of NUMA-shaped regions.  Regions partition a machine's processors
// in declaration order and attach a locality cost multiplier to the
// reallocation/migration debt of the processors they cover: growing or
// shrinking an allotment across a remote region pays proportionally more
// of the run's per-processor reallocation cost (the migration-debt
// machinery of sim/quantum_engine.hpp).  A machine without regions uses
// the flat penalty unchanged, which is what keeps the single-machine
// cluster byte-identical to the flat engine.
#pragma once

#include <vector>

#include "dag/job.hpp"
#include "sim/simulator.hpp"

namespace abg::cluster {

/// Fully resolved datacenter description.
struct ClusterSpec {
  std::vector<sim::ClusterMachine> machines;

  int total_processors() const;

  /// Resolves a SimConfig's cluster block: explicit shapes are validated
  /// (size must equal the machine count, region processors must sum to the
  /// machine size, multipliers must be positive); an empty shape list
  /// builds `machines` uniform machines of `config.processors` each.
  /// Throws std::invalid_argument prefixed with `context`.
  static ClusterSpec resolve(const sim::SimConfig& config,
                             const char* context);
};

/// Region-weighted reallocation penalty: the steps a job loses at the
/// start of a quantum when its allotment on `machine` changed.  Processor
/// indices [min(prev, cur), max(prev, cur)) each cost
/// `cost_per_proc × multiplier(region covering the index)`; the rounded
/// sum is capped at the quantum length.  A machine with no regions (or
/// one region at multiplier 1.0) reproduces sim::reallocation_penalty
/// exactly.
dag::Steps region_reallocation_penalty(const sim::ClusterMachine& machine,
                                       int previous_allotment, int allotment,
                                       dag::Steps cost_per_proc,
                                       dag::Steps quantum_length);

}  // namespace abg::cluster
