// Multi-machine cluster driver over the unified engine core.
//
// Simulates a datacenter of N machines, each running its own allocator
// over its own synchronous quantum loop (the fault-free loop of
// sim/engine_core.hpp, the same replica the sharded engine runs per
// group).  Submissions are placed once by a Router policy
// (cluster/router.hpp), then the coordinator advances all machines in
// lockstep epochs on an exp::ThreadPool — one machine per task, submitted
// longest-first (sim/lpt_pack.hpp) — and, between barriers, detects desire
// imbalance and migrates queued jobs from over-quota machines to machines
// with slack, charging one quantum of transfer debt (the migrated job's
// eligibility moves past the epoch by the quantum length, and its next
// placement is charged the full reallocation penalty because its previous
// allotment resets to zero).
//
// Determinism contract (pinned by golden fixtures + ctest):
//   * byte-identical results at any ClusterConfig::threads — machine
//     loops touch only their own state; routing, migration and event
//     publishing happen on the coordinator thread between barriers;
//   * a 1-machine cluster without explicit shapes is byte-identical to
//     the flat engine under the same allocator (the machine clones the
//     run's allocator, its budget is the whole machine, and no routing or
//     migration decision can differ).
#pragma once

#include <vector>

#include "alloc/allocator.hpp"
#include "sched/execution_policy.hpp"
#include "sched/request_policy.hpp"
#include "sim/simulator.hpp"

namespace abg::cluster {

/// Simulates the job set on the cluster `config.cluster` describes.
/// Requires the sync boundary model and no fault plan, quantum-length
/// policy, or hierarchical allocation; throws std::invalid_argument
/// otherwise.  The allocator is reset and cloned per machine.
sim::SimResult simulate_job_set_cluster(
    std::vector<sim::JobSubmission> submissions,
    const sched::ExecutionPolicy& execution,
    const sched::RequestPolicy& request_prototype,
    alloc::Allocator& allocator, const sim::SimConfig& config);

}  // namespace abg::cluster
