#include "cluster/cluster_spec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "sim/quantum_engine.hpp"

namespace abg::cluster {

int ClusterSpec::total_processors() const {
  int total = 0;
  for (const sim::ClusterMachine& machine : machines) {
    total += machine.processors;
  }
  return total;
}

ClusterSpec ClusterSpec::resolve(const sim::SimConfig& config,
                                 const char* context) {
  const std::string prefix(context);
  if (config.cluster.machines < 1) {
    throw std::invalid_argument(prefix + ": cluster machines must be >= 1");
  }
  ClusterSpec spec;
  const auto count = static_cast<std::size_t>(config.cluster.machines);
  if (config.cluster.shapes.empty()) {
    sim::ClusterMachine uniform;
    uniform.processors = config.processors;
    spec.machines.assign(count, uniform);
    return spec;
  }
  if (config.cluster.shapes.size() != count) {
    throw std::invalid_argument(
        prefix + ": cluster shape list has " +
        std::to_string(config.cluster.shapes.size()) + " entries for " +
        std::to_string(config.cluster.machines) + " machines");
  }
  for (std::size_t m = 0; m < count; ++m) {
    const sim::ClusterMachine& machine = config.cluster.shapes[m];
    const std::string where = prefix + ": cluster machine " +
                              std::to_string(m);
    if (machine.processors < 1) {
      throw std::invalid_argument(where + ": processors must be >= 1");
    }
    int region_sum = 0;
    for (const sim::ClusterRegion& region : machine.regions) {
      if (region.processors < 1) {
        throw std::invalid_argument(where +
                                    ": region processors must be >= 1");
      }
      if (!(region.cost_multiplier > 0.0)) {
        throw std::invalid_argument(where +
                                    ": region cost multiplier must be > 0");
      }
      region_sum += region.processors;
    }
    if (!machine.regions.empty() && region_sum != machine.processors) {
      throw std::invalid_argument(
          where + ": regions cover " + std::to_string(region_sum) +
          " processors but the machine has " +
          std::to_string(machine.processors));
    }
  }
  spec.machines = config.cluster.shapes;
  return spec;
}

dag::Steps region_reallocation_penalty(const sim::ClusterMachine& machine,
                                       int previous_allotment, int allotment,
                                       dag::Steps cost_per_proc,
                                       dag::Steps quantum_length) {
  if (machine.regions.empty()) {
    return sim::reallocation_penalty(previous_allotment, allotment,
                                     cost_per_proc, quantum_length);
  }
  if (cost_per_proc <= 0 || previous_allotment == allotment) {
    return 0;
  }
  // Allotments fill the machine region by region in declaration order, so
  // an allotment change touches the processor indices between the old and
  // new boundary; each index pays its region's multiplier.
  const int lo = std::min(previous_allotment, allotment);
  const int hi = std::max(previous_allotment, allotment);
  double weighted = 0.0;
  int region_start = 0;
  for (const sim::ClusterRegion& region : machine.regions) {
    const int region_end = region_start + region.processors;
    const int overlap =
        std::min(hi, region_end) - std::max(lo, region_start);
    if (overlap > 0) {
      weighted += static_cast<double>(overlap) * region.cost_multiplier;
    }
    region_start = region_end;
  }
  // Indices past the declared regions (over-subscribed allotments) pay the
  // flat rate.
  if (hi > region_start) {
    weighted += static_cast<double>(hi - std::max(lo, region_start));
  }
  const auto penalty = static_cast<dag::Steps>(
      std::llround(static_cast<double>(cost_per_proc) * weighted));
  return std::min(quantum_length, penalty);
}

}  // namespace abg::cluster
