#include "cluster/router.hpp"

#include <cstdint>
#include <limits>
#include <stdexcept>

namespace abg::cluster {

namespace {

/// a × b with saturation to the int64 range (loads can in principle grow
/// past what a cross-multiplication holds; a saturated compare still
/// orders deterministically).
std::int64_t mul_saturated(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return out;
}

/// Lowest index minimizing `numerator[m] / machines[m].processors`,
/// compared by cross-multiplication so the choice never depends on
/// floating-point rounding.
template <typename Num>
std::size_t min_density(const std::vector<MachineLoad>& machines,
                        Num (*numerator)(const MachineLoad&)) {
  std::size_t best = 0;
  for (std::size_t m = 1; m < machines.size(); ++m) {
    const std::int64_t lhs =
        mul_saturated(static_cast<std::int64_t>(numerator(machines[m])),
                      machines[best].processors);
    const std::int64_t rhs =
        mul_saturated(static_cast<std::int64_t>(numerator(machines[best])),
                      machines[m].processors);
    if (lhs < rhs) {
      best = m;
    }
  }
  return best;
}

class LeastLoadedRouter final : public Router {
 public:
  std::string_view name() const override { return "least-loaded"; }
  std::size_t route(const RouteRequest& /*job*/,
                    const std::vector<MachineLoad>& machines) override {
    return min_density<dag::TaskCount>(
        machines, [](const MachineLoad& m) { return m.assigned_work; });
  }
};

class RoundRobinRouter final : public Router {
 public:
  std::string_view name() const override { return "round-robin"; }
  std::size_t route(const RouteRequest& /*job*/,
                    const std::vector<MachineLoad>& machines) override {
    return cursor_++ % machines.size();
  }

 private:
  std::size_t cursor_ = 0;
};

class DesireAwareRouter final : public Router {
 public:
  std::string_view name() const override { return "desire-aware"; }
  std::size_t route(const RouteRequest& /*job*/,
                    const std::vector<MachineLoad>& machines) override {
    return min_density<std::int64_t>(
        machines, [](const MachineLoad& m) { return m.assigned_desire; });
  }
};

/// FNV-1a over the class label; unlabeled jobs fall back to a
/// parallelism-bucket class so closed-form workloads still spread by
/// shape instead of all hashing to one machine.
class ClassAffinityRouter final : public Router {
 public:
  std::string_view name() const override { return "class-affinity"; }
  std::size_t route(const RouteRequest& job,
                    const std::vector<MachineLoad>& machines) override {
    std::uint64_t hash = 1469598103934665603ull;
    const auto feed = [&hash](unsigned char byte) {
      hash ^= byte;
      hash *= 1099511628211ull;
    };
    if (!job.job_class.empty()) {
      for (const char c : job.job_class) {
        feed(static_cast<unsigned char>(c));
      }
    } else {
      // Bucket by the bit width of the equilibrium desire: jobs within a
      // 2x parallelism band share a machine.
      std::uint64_t bucket = 0;
      for (auto d = static_cast<std::uint64_t>(
               equilibrium_desire(job.work, job.critical_path));
           d > 0; d >>= 1) {
        ++bucket;
      }
      for (int i = 0; i < 8; ++i) {
        feed(static_cast<unsigned char>(bucket >> (8 * i)));
      }
    }
    return static_cast<std::size_t>(hash % machines.size());
  }
};

}  // namespace

std::int64_t equilibrium_desire(dag::TaskCount work,
                                dag::Steps critical_path) {
  if (work <= 0 || critical_path <= 0) {
    return 1;
  }
  const auto span = static_cast<dag::TaskCount>(critical_path);
  return static_cast<std::int64_t>((work + span - 1) / span);
}

std::unique_ptr<Router> make_router(const std::string& name) {
  if (name.empty() || name == "least-loaded") {
    return std::make_unique<LeastLoadedRouter>();
  }
  if (name == "round-robin") {
    return std::make_unique<RoundRobinRouter>();
  }
  if (name == "desire-aware") {
    return std::make_unique<DesireAwareRouter>();
  }
  if (name == "class-affinity") {
    return std::make_unique<ClassAffinityRouter>();
  }
  throw std::invalid_argument(
      "unknown router '" + name +
      "' (expected least-loaded, round-robin, desire-aware or "
      "class-affinity)");
}

const std::vector<std::string>& router_names() {
  static const std::vector<std::string> names = {
      "least-loaded", "round-robin", "desire-aware", "class-affinity"};
  return names;
}

}  // namespace abg::cluster
