#include "cluster/cluster_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "cluster/cluster_spec.hpp"
#include "cluster/router.hpp"
#include "exp/thread_pool.hpp"
#include "obs/event_bus.hpp"
#include "sim/engine_core.hpp"
#include "sim/job_runtime.hpp"
#include "sim/lpt_pack.hpp"
#include "sim/quantum_engine.hpp"
#include "sim/quantum_eval.hpp"

namespace abg::cluster {

namespace {

constexpr const char* kContext = "simulate_job_set_cluster";

/// Sentinel in MachineEngine::original marking a slot whose job migrated
/// away (the slot is tombstoned kDone; the job lives on elsewhere).
constexpr std::size_t kMovedAway = static_cast<std::size_t>(-1);

/// Run-wide constants shared by every machine loop (read-only during an
/// epoch, so machine tasks can touch them without synchronization).
struct SharedConfig {
  const sched::ExecutionPolicy* execution = nullptr;
  dag::Steps length = 0;
  dag::Steps max_steps = 0;
  dag::Steps reallocation_cost_per_proc = 0;
};

/// One cluster machine: its routed jobs' runtime states, its own
/// allocator, and a re-entrant quantum loop the coordinator advances
/// epoch by epoch.  The loop body replicates the fault-free synchronous
/// loop of engine_core.cpp against the machine's own processors, so the
/// 1-machine trace is byte-identical to the flat engine's.
struct MachineEngine {
  sim::ClusterMachine shape;
  sim::JobBatch batch;
  /// Original submission index of batch slot k (kMovedAway after the job
  /// migrated to another machine), for the deterministic merge.
  std::vector<std::size_t> original;
  std::unique_ptr<alloc::Allocator> allocator;
  std::size_t max_active = 0;
  std::size_t remaining = 0;
  dag::Steps now = 0;
  std::int64_t quanta = 0;
  dag::TaskCount executed_work = 0;
  dag::TaskCount allotted_cycles = 0;

  // Scratch buffers reused across quanta.
  std::vector<std::size_t> active_idx;
  std::vector<int> requests;
  std::vector<std::size_t> feedback;

  /// Aggregated desire of the machine for the epoch ending at `horizon`:
  /// live desires of active jobs plus one processor per queued job that
  /// becomes eligible inside the epoch (the conservative floor).
  int aggregated_desire(dag::Steps horizon) const {
    int desire = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch.done(i)) {
        continue;
      }
      if (batch.active(i)) {
        desire += batch.desire[i];
      } else if (batch.eligible_step[i] < horizon) {
        desire += 1;
      }
    }
    return desire;
  }

  /// Runs the machine's quantum loop until the epoch boundary, the
  /// machine's completion, or the step bound.
  void advance(dag::Steps epoch_end, const SharedConfig& shared) {
    const dag::Steps length = shared.length;
    const int budget = shape.processors;
    while (remaining > 0 && now < epoch_end) {
      active_idx.clear();
      std::size_t active_count = batch.active_count();
      while (active_count < max_active) {
        const std::size_t best = batch.next_admission(now);
        if (best == batch.size()) {
          break;
        }
        batch.regime[best] = sim::JobRegime::kActive;
        batch.desire[best] = batch.jobs[best].request->first_request();
        ++active_count;
      }
      requests.assign(batch.size(), 0);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch.active(i)) {
          active_idx.push_back(i);
          requests[i] = batch.desire[i];
        }
      }

      if (active_idx.empty()) {
        // Every remaining job of this machine is eligible in the future:
        // idle to the next eligibility boundary (possibly overshooting
        // the epoch — boundaries stay aligned since epochs are whole
        // quanta, and the coordinator skips the machine until the epoch
        // clock catches up).
        const dag::Steps gap =
            batch.next_eligible_step(shared.max_steps) - now;
        const dag::Steps quanta_to_skip =
            std::max<dag::Steps>(1, gap / length);
        now += quanta_to_skip * length;
        if (now >= shared.max_steps) {
          throw std::runtime_error(std::string(kContext) +
                                   ": exceeded step bound");
        }
        continue;
      }

      ++quanta;
      const int pool = allocator->pool(budget);
      const std::vector<int> allotments =
          allocator->allocate(requests, budget);
      int assigned = 0;
      for (const int a : allotments) {
        assigned += a;
      }
      const int leftover = std::max(0, pool - assigned);

      feedback.clear();
      for (const std::size_t i : active_idx) {
        sim::JobRuntime& st = batch.jobs[i];
        const int allotment = allotments[i];
        ++st.local_quantum;
        const dag::Steps penalty = region_reallocation_penalty(
            shape, batch.previous_allotment[i], allotment,
            shared.reallocation_cost_per_proc, length);
        batch.previous_allotment[i] = allotment;
        const sched::QuantumStats stats =
            sim::quantum_eval::run_allotted_quantum(
                *st.job, *shared.execution, st.local_quantum,
                batch.desire[i], allotment, length, penalty, leftover, now);
        st.trace.quanta.push_back(stats);
        executed_work += stats.work;
        allotted_cycles += static_cast<dag::TaskCount>(allotment) *
                           static_cast<dag::TaskCount>(length);
        if (stats.finished) {
          st.trace.completion_step = now + stats.steps_used;
          batch.regime[i] = sim::JobRegime::kDone;
          --remaining;
        } else {
          feedback.push_back(i);
        }
      }

      now += length;
      if (remaining > 0 && now >= shared.max_steps) {
        throw std::runtime_error(std::string(kContext) +
                                 ": exceeded step bound; scheduling is not "
                                 "making progress");
      }
      for (const std::size_t i : feedback) {
        sim::JobRuntime& st = batch.jobs[i];
        batch.desire[i] = st.request->next_request(st.trace.quanta.back());
      }
    }
  }
};

/// Queued job the imbalance pass migrates next: the back of the donor's
/// FCFS queue (highest eligible step, ties by highest slot index), so the
/// head of the queue — the next admission — is never reordered.
std::size_t pick_migration_slot(const sim::JobBatch& batch) {
  std::size_t best = batch.size();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch.regime[i] != sim::JobRegime::kQueued) {
      continue;
    }
    if (best == batch.size() ||
        batch.eligible_step[i] >= batch.eligible_step[best]) {
      best = i;
    }
  }
  return best;
}

}  // namespace

sim::SimResult simulate_job_set_cluster(
    std::vector<sim::JobSubmission> submissions,
    const sched::ExecutionPolicy& execution,
    const sched::RequestPolicy& request_prototype,
    alloc::Allocator& allocator, const sim::SimConfig& config) {
  if (config.processors < 1) {
    throw std::invalid_argument(std::string(kContext) +
                                ": processors must be >= 1");
  }
  if (config.quantum_length < 1) {
    throw std::invalid_argument(std::string(kContext) +
                                ": quantum length must be >= 1");
  }
  if (config.cluster.migration_period < 0) {
    throw std::invalid_argument(std::string(kContext) +
                                ": migration period must be >= 0 quanta");
  }
  if (config.engine == sim::EngineKind::kAsync) {
    throw std::invalid_argument(
        std::string(kContext) +
        ": cluster mode requires the sync boundary model");
  }
  if (config.faults != nullptr && !config.faults->empty()) {
    throw std::invalid_argument(
        std::string(kContext) +
        ": fault plans are not supported with cluster mode");
  }
  if (config.quantum_length_policy != nullptr) {
    throw std::invalid_argument(
        std::string(kContext) +
        ": quantum-length policies are not supported with cluster mode");
  }
  if (config.hier.groups != 0) {
    throw std::invalid_argument(
        std::string(kContext) +
        ": cluster mode does not compose with hierarchical allocation");
  }
  const ClusterSpec spec = ClusterSpec::resolve(config, kContext);
  const std::unique_ptr<Router> router = make_router(config.cluster.router);
  allocator.reset();

  const std::size_t machine_count = spec.machines.size();
  const std::size_t n = submissions.size();

  // Route every submission once, in submission order, on this thread.
  std::vector<MachineLoad> loads(machine_count);
  for (std::size_t m = 0; m < machine_count; ++m) {
    loads[m].processors = spec.machines[m].processors;
  }
  std::vector<std::size_t> machine_of(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (submissions[i].job == nullptr) {
      throw std::invalid_argument(std::string(kContext) + ": null job");
    }
    RouteRequest request;
    request.submission_index = i;
    request.work = submissions[i].job->total_work();
    request.critical_path = submissions[i].job->critical_path();
    request.release_step = submissions[i].release_step;
    request.job_class = submissions[i].name;
    const std::size_t m = router->route(request, loads);
    if (m >= machine_count) {
      throw std::logic_error(std::string(kContext) + ": router '" +
                             std::string(router->name()) +
                             "' chose machine " + std::to_string(m) +
                             " of " + std::to_string(machine_count));
    }
    machine_of[i] = m;
    loads[m].assigned_work += request.work;
    loads[m].assigned_jobs += 1;
    loads[m].assigned_desire +=
        equilibrium_desire(request.work, request.critical_path);
  }

  // Partition submissions onto their machines, remembering original
  // indices; per-machine intake with *global* totals so the safety bound
  // matches the flat engine's formula bit for bit.
  std::vector<std::vector<sim::JobSubmission>> machine_submissions(
      machine_count);
  std::vector<MachineEngine> machines(machine_count);
  std::vector<dag::Steps> release_of(n, 0);
  std::vector<dag::TaskCount> work_of(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    release_of[i] = submissions[i].release_step;
    work_of[i] = submissions[i].job->total_work();
    const std::size_t m = machine_of[i];
    machine_submissions[m].push_back(std::move(submissions[i]));
    machines[m].original.push_back(i);
  }
  sim::IntakeTotals totals;
  std::size_t total_remaining = 0;
  for (std::size_t m = 0; m < machine_count; ++m) {
    sim::IntakeTotals machine_totals;
    machines[m].batch =
        sim::intake_submissions(std::move(machine_submissions[m]),
                                request_prototype, kContext, machine_totals);
    machines[m].shape = spec.machines[m];
    machines[m].remaining = machine_totals.remaining;
    machines[m].max_active =
        config.max_active_jobs > 0
            ? static_cast<std::size_t>(config.max_active_jobs)
            : static_cast<std::size_t>(spec.machines[m].processors);
    machines[m].allocator = allocator.clone();
    machines[m].allocator->reset();
    totals.total_work += machine_totals.total_work;
    totals.latest_release =
        std::max(totals.latest_release, machine_totals.latest_release);
    totals.remaining += machine_totals.remaining;
    total_remaining += machine_totals.remaining;
  }

  SharedConfig shared;
  shared.execution = &execution;
  shared.length = config.quantum_length;
  shared.max_steps = config.max_steps > 0
                         ? config.max_steps
                         : totals.latest_release + 8 * totals.total_work +
                               64 * config.quantum_length;
  shared.reallocation_cost_per_proc = config.reallocation_cost_per_proc;

  // Observability: coordinator-thread publishing only (the bus is
  // unsynchronized; machine loops must not touch it).
  obs::EventBus* bus = config.obs.event_bus != nullptr &&
                               config.obs.event_bus->active()
                           ? config.obs.event_bus
                           : nullptr;
  if (bus != nullptr) {
    obs::Event start;
    start.kind = obs::EventKind::kRunStart;
    start.processors = spec.total_processors();
    start.quantum_length = config.quantum_length;
    start.job_count = static_cast<std::int64_t>(n);
    bus->publish(start);
    std::vector<const sim::JobTrace*> traces(n, nullptr);
    for (const MachineEngine& machine : machines) {
      for (std::size_t k = 0; k < machine.batch.size(); ++k) {
        traces[machine.original[k]] = &machine.batch.jobs[k].trace;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      obs::Event e;
      e.kind = obs::EventKind::kJobSubmit;
      e.step = traces[i]->release_step;
      e.job = static_cast<std::int64_t>(i);
      e.work = traces[i]->work;
      e.critical_path = traces[i]->critical_path;
      bus->publish(e);
    }
    // One route event per job, in submission order, with the cumulative
    // routed work of its machine (the per-machine counter tracks).
    std::vector<dag::TaskCount> routed(machine_count, 0);
    for (std::size_t i = 0; i < n; ++i) {
      routed[machine_of[i]] += work_of[i];
      obs::Event e;
      e.kind = obs::EventKind::kClusterRoute;
      e.step = release_of[i];
      e.job = static_cast<std::int64_t>(i);
      e.cluster_machines = static_cast<int>(machine_count);
      e.machine = static_cast<std::int64_t>(machine_of[i]);
      e.work = routed[machine_of[i]];
      bus->publish(e);
    }
  }

  exp::ThreadPool pool(
      exp::ThreadPool::resolve_threads(config.cluster.threads));
  // Machine loops are coupled only through migration, so the epoch length
  // is the migration period; with migration off any epoch length yields
  // identical traces and 16 quanta just bounds coordinator overhead.
  const dag::Steps epoch_quanta = config.cluster.migration_period > 0
                                      ? config.cluster.migration_period
                                      : 16;
  const dag::Steps epoch_length = epoch_quanta * config.quantum_length;
  dag::Steps epoch_start = 0;
  std::int64_t migrations = 0;
  dag::Steps migration_debt_steps = 0;
  std::vector<std::size_t> weights(machine_count, 0);

  while (total_remaining > 0) {
    if (config.cancel != nullptr && config.cancel->cancelled()) {
      throw util::CancelledError(
          std::string(kContext) + ": run cancelled (" +
              util::to_string(config.cancel->cause()) + ")",
          config.cancel->cause());
    }
    const dag::Steps epoch_end = epoch_start + epoch_length;

    // Longest-first machine→worker packing (active jobs as the size
    // estimate); order only affects wall-clock, never results.
    for (std::size_t m = 0; m < machine_count; ++m) {
      weights[m] = machines[m].remaining;
    }
    for (const std::size_t m : sim::lpt_order(weights)) {
      MachineEngine& machine = machines[m];
      if (machine.remaining == 0 || machine.now >= epoch_end) {
        continue;  // finished, or idle-skipped past this epoch
      }
      pool.submit(
          [&machine, epoch_end, &shared] {
            machine.advance(epoch_end, shared);
          });
    }
    pool.wait();  // barrier: rethrows the first machine exception

    total_remaining = 0;
    for (const MachineEngine& machine : machines) {
      total_remaining += machine.remaining;
    }

    // Imbalance pass (coordinator only): migrate the backs of over-quota
    // machines' queues toward machines with slack, one conservative
    // desire unit at a time, until neither side qualifies.
    if (config.cluster.migration_period > 0 && total_remaining > 0 &&
        machine_count > 1) {
      const dag::Steps horizon = epoch_end + epoch_length;
      std::vector<int> pressure(machine_count, 0);
      for (std::size_t m = 0; m < machine_count; ++m) {
        pressure[m] = machines[m].aggregated_desire(horizon) -
                      machines[m].shape.processors;
      }
      for (std::size_t moved = 0; moved < n; ++moved) {
        std::size_t donor = machine_count;
        std::size_t donor_slot = 0;
        for (std::size_t m = 0; m < machine_count; ++m) {
          if (pressure[m] <= 0 ||
              (donor != machine_count && pressure[m] <= pressure[donor])) {
            continue;
          }
          const std::size_t slot = pick_migration_slot(machines[m].batch);
          if (slot != machines[m].batch.size()) {
            donor = m;
            donor_slot = slot;
          }
        }
        std::size_t recv = machine_count;
        for (std::size_t m = 0; m < machine_count; ++m) {
          if (pressure[m] < 0 &&
              (recv == machine_count || pressure[m] < pressure[recv])) {
            recv = m;
          }
        }
        if (donor == machine_count || recv == machine_count) {
          break;
        }
        MachineEngine& from = machines[donor];
        MachineEngine& to = machines[recv];
        const std::size_t orig = from.original[donor_slot];
        const dag::Steps debt = config.quantum_length;
        const dag::Steps eligible =
            std::max(from.batch.eligible_step[donor_slot], epoch_end) + debt;
        const std::size_t slot =
            to.batch.append(std::move(from.batch.jobs[donor_slot]));
        to.batch.eligible_step[slot] = eligible;
        to.original.push_back(orig);
        to.remaining += 1;
        from.batch.regime[donor_slot] = sim::JobRegime::kDone;
        from.original[donor_slot] = kMovedAway;
        from.remaining -= 1;
        pressure[donor] -= 1;
        pressure[recv] += 1;
        ++migrations;
        migration_debt_steps += debt;
        if (bus != nullptr) {
          obs::Event e;
          e.kind = obs::EventKind::kClusterMigrate;
          e.step = epoch_end;
          e.job = static_cast<std::int64_t>(orig);
          e.cluster_machines = static_cast<int>(machine_count);
          e.machine = static_cast<std::int64_t>(recv);
          e.machine_from = static_cast<std::int64_t>(donor);
          e.debt_steps = debt;
          bus->publish(e);
        }
      }
    }
    epoch_start = epoch_end;
  }

  // Deterministic merge: traces by original submission index (skipping
  // tombstones of migrated jobs), aggregates exactly as engine_core's
  // aggregate_result derives them.
  sim::SimResult result;
  result.jobs.resize(n);
  double response_sum = 0.0;
  for (MachineEngine& machine : machines) {
    result.quanta += machine.quanta;
    for (std::size_t k = 0; k < machine.batch.size(); ++k) {
      if (machine.original[k] == kMovedAway) {
        continue;
      }
      sim::JobTrace& trace = machine.batch.jobs[k].trace;
      result.makespan = std::max(result.makespan, trace.completion_step);
      response_sum += static_cast<double>(trace.response_time());
      result.total_waste += trace.total_waste();
      result.jobs[machine.original[k]] = std::move(trace);
    }
  }
  result.mean_response_time =
      n == 0 ? 0.0 : response_sum / static_cast<double>(n);

  if (bus != nullptr) {
    // Replay the per-quantum stream from the coordinator (the bus is
    // unsynchronized, so machine loops never publish; after the final
    // barrier the merged traces carry the same records the flat engine
    // emits live — grouped by job instead of interleaved by step).
    for (std::size_t j = 0; j < result.jobs.size(); ++j) {
      const sim::JobTrace& trace = result.jobs[j];
      for (const sched::QuantumStats& stats : trace.quanta) {
        obs::Event e;
        e.kind = obs::EventKind::kQuantum;
        e.step = stats.start_step;
        e.job = static_cast<std::int64_t>(j);
        e.stats = &stats;
        bus->publish(e);
      }
      obs::Event done;
      done.kind = obs::EventKind::kJobComplete;
      done.step = trace.completion_step;
      done.job = static_cast<std::int64_t>(j);
      bus->publish(done);
    }
    for (std::size_t m = 0; m < machine_count; ++m) {
      std::int64_t finished_here = 0;
      for (const std::size_t orig : machines[m].original) {
        finished_here += orig != kMovedAway ? 1 : 0;
      }
      obs::Event e;
      e.kind = obs::EventKind::kClusterMachineSummary;
      e.step = machines[m].now;
      e.job = static_cast<std::int64_t>(m);
      e.cluster_machines = static_cast<int>(machine_count);
      e.machine = static_cast<std::int64_t>(m);
      e.processors = machines[m].shape.processors;
      e.work = machines[m].executed_work;
      e.allotted_cycles = machines[m].allotted_cycles;
      e.active_jobs = finished_here;
      bus->publish(e);
    }
    obs::Event end;
    end.kind = obs::EventKind::kRunEnd;
    end.step = result.makespan;
    end.makespan = result.makespan;
    bus->publish(end);
  }
  return result;
}

}  // namespace abg::cluster
