// Metrics registry: counters, gauges and log-bucketed histograms.
//
// A MetricsRegistry aggregates one run's observations into a fixed, small
// summary that serializes deterministically via util/json.  The sweep
// runner merges per-run registries into one; every merge operation is
// commutative and associative (counters and histogram buckets add, gauges
// take the max), so a merged registry is byte-identical regardless of
// thread count or completion order — the same determinism contract the
// sweep records obey.
//
// Histograms are log2-bucketed: bucket 0 holds values < 1, bucket i >= 1
// holds [2^(i-1), 2^i).  Exact count/sum/min/max ride alongside, and
// percentiles are estimated from bucket upper bounds (within a factor of
// two, which is what capacity-planning questions need).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/json.hpp"

namespace abg::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-set value within a run; merges across runs take the max (the only
/// order-independent choice), so a merged gauge reads as "worst observed".
class Gauge {
 public:
  void set(double value);
  double value() const { return value_; }
  bool has_value() const { return set_; }
  void merge(const Gauge& other);

 private:
  double value_ = 0.0;
  bool set_ = false;
};

/// Log2-bucketed histogram with exact count/sum/min/max.
class Histogram {
 public:
  /// Number of buckets: bucket 0 (< 1) plus one per power of two up to
  /// 2^62, which covers every step/cycle count the simulator can produce.
  static constexpr int kBuckets = 64;

  /// Records one sample.  Negative samples clamp into bucket 0.
  void observe(double value);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const;

  /// Estimated q-quantile (0 <= q <= 1) from bucket upper bounds, clamped
  /// to the exact [min, max]; NaN when empty.
  double quantile(double q) const;

  /// Count in bucket `i` (see class comment for bucket bounds).
  std::int64_t bucket(int i) const { return buckets_[i]; }

  void merge(const Histogram& other);

 private:
  std::int64_t buckets_[kBuckets] = {};
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metrics of one run (or one merged sweep).  Names are kept in a
/// sorted map so serialization order is independent of touch order.
class MetricsRegistry {
 public:
  /// Finds or creates the named metric.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Merges another registry in (commutative; see class comment).
  void merge(const MetricsRegistry& other);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,mean,p50,p95,buckets:[...trailing zeros trimmed...]}}} — keys
  /// sorted, numbers in util::Json's deterministic shortest form.
  util::Json to_json() const;

  /// Serializes to_json() with a trailing newline.
  void write(std::ostream& os) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace abg::obs
