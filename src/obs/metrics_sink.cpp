#include "obs/metrics_sink.hpp"

namespace abg::obs {

void MetricsSink::on_event(const Event& event) {
  MetricsRegistry& reg = *registry_;
  switch (event.kind) {
    case EventKind::kRunStart:
      reg.counter("sim.runs").add();
      reg.gauge("sim.processors").set(static_cast<double>(event.processors));
      break;
    case EventKind::kJobSubmit:
      reg.counter("sim.jobs_submitted").add();
      reg.histogram("job.work").observe(static_cast<double>(event.work));
      reg.histogram("job.critical_path")
          .observe(static_cast<double>(event.critical_path));
      break;
    case EventKind::kJobAdmit:
      reg.counter("sim.admissions").add();
      break;
    case EventKind::kAllocation:
      reg.counter("sim.allocations").add();
      reg.histogram("alloc.assigned")
          .observe(static_cast<double>(event.assigned));
      reg.histogram("alloc.active_jobs")
          .observe(static_cast<double>(event.active_jobs));
      if (event.pool > 0) {
        reg.histogram("alloc.utilization_pct")
            .observe(100.0 * static_cast<double>(event.assigned) /
                     static_cast<double>(event.pool));
      }
      break;
    case EventKind::kQuantum: {
      const sched::QuantumStats& q = *event.stats;
      reg.counter("sim.quanta").add();
      reg.counter("sim.steps").add(q.steps_used);
      reg.counter("sim.work").add(static_cast<std::int64_t>(q.work));
      if (q.deprived()) {
        reg.counter("sim.deprived_quanta").add();
      }
      reg.histogram("quantum.request")
          .observe(static_cast<double>(q.request));
      reg.histogram("quantum.allotment")
          .observe(static_cast<double>(q.allotment));
      reg.histogram("quantum.length")
          .observe(static_cast<double>(q.length));
      reg.histogram("quantum.waste").observe(static_cast<double>(q.waste()));
      break;
    }
    case EventKind::kJobComplete:
      reg.counter("sim.completions").add();
      break;
    case EventKind::kJobCrash:
      reg.counter("fault.crashes").add();
      reg.counter("fault.lost_work")
          .add(static_cast<std::int64_t>(event.lost_work));
      break;
    case EventKind::kFault:
      switch (event.fault) {
        case fault::FaultKind::kProcessorFailure:
          reg.counter("fault.failures").add();
          break;
        case fault::FaultKind::kProcessorRepair:
          reg.counter("fault.repairs").add();
          break;
        case fault::FaultKind::kAllotmentRevocation:
          reg.counter("fault.revocations").add();
          break;
        case fault::FaultKind::kJobCrash:
          break;  // applied crashes arrive as kJobCrash
      }
      break;
    case EventKind::kHierRebalance:
      reg.counter("hier.rebalances").add();
      reg.gauge("hier.groups").set(static_cast<double>(event.hier_groups));
      reg.histogram("hier.aggregate_desire")
          .observe(static_cast<double>(event.desire));
      if (event.pool > 0) {
        reg.histogram("hier.budget_utilization_pct")
            .observe(100.0 * static_cast<double>(event.assigned) /
                     static_cast<double>(event.pool));
      }
      break;
    case EventKind::kHierGroupSummary:
      reg.counter("hier.group_summaries").add();
      if (event.allotted_cycles > 0) {
        reg.histogram("hier.group_utilization_pct")
            .observe(100.0 * static_cast<double>(event.work) /
                     static_cast<double>(event.allotted_cycles));
      }
      break;
    case EventKind::kOpenArrival:
      reg.counter("open.arrivals").add();
      reg.histogram("open.in_system")
          .observe(static_cast<double>(event.in_system));
      break;
    case EventKind::kOpenDeparture:
      reg.counter("open.completed").add();
      reg.histogram("open.response")
          .observe(static_cast<double>(event.response));
      reg.histogram("open.job_work").observe(static_cast<double>(event.work));
      reg.histogram("open.in_system")
          .observe(static_cast<double>(event.in_system));
      break;
    case EventKind::kOpenSummary:
      reg.counter("open.admitted").add(event.open_admitted);
      reg.gauge("open.in_system_high_water")
          .set(static_cast<double>(event.open_high_water));
      reg.counter("open.stats_merges").add(event.open_stats_merges);
      break;
    case EventKind::kClusterRoute:
      reg.counter("cluster.routes").add();
      reg.gauge("cluster.machines")
          .set(static_cast<double>(event.cluster_machines));
      break;
    case EventKind::kClusterMigrate:
      reg.counter("cluster.migrations").add();
      reg.counter("cluster.migration_debt_steps")
          .add(static_cast<std::int64_t>(event.debt_steps));
      break;
    case EventKind::kClusterMachineSummary:
      reg.counter("cluster.machine_summaries").add();
      reg.histogram("cluster.machine_jobs")
          .observe(static_cast<double>(event.active_jobs));
      if (event.allotted_cycles > 0) {
        reg.histogram("cluster.machine_utilization_pct")
            .observe(100.0 * static_cast<double>(event.work) /
                     static_cast<double>(event.allotted_cycles));
      }
      break;
    case EventKind::kRunEnd:
      reg.gauge("sim.makespan").set(static_cast<double>(event.makespan));
      break;
  }
}

}  // namespace abg::obs
