// Event-to-metrics aggregation.
//
// A MetricsSink subscribes to a run's EventBus and folds the event stream
// into a caller-owned MetricsRegistry.  The metric catalogue lives here
// (and is documented in docs/observability.md); everything is derived from
// events alone, so the sink works identically under both engines and with
// or without faults.
#pragma once

#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"

namespace abg::obs {

/// Folds engine events into a registry.  The registry is not owned and may
/// be shared across sequential runs (metrics accumulate); for parallel
/// runs give each its own registry and merge.
class MetricsSink final : public Sink {
 public:
  explicit MetricsSink(MetricsRegistry& registry) : registry_(&registry) {}

  void on_event(const Event& event) override;

 private:
  MetricsRegistry* registry_;
};

}  // namespace abg::obs
