// Simulation-to-Perfetto trace recording.
//
// A SimTraceSink subscribes to a run's EventBus and renders the run as a
// Chrome/Perfetto timeline (open the written file in ui.perfetto.dev):
//
//   * one thread track per job, one slice per quantum, named "q<index>"
//     and colored by the desire-vs-allotment regime — green ("good") when
//     the request was satisfied, red ("terrible") when the allocator
//     deprived the job, grey when the quantum did no work (crash-voided or
//     pure migration);
//   * a per-job counter track "job N d/a" with the request d(q) and
//     allotment a(q) series, and "job N A" with the measured average
//     parallelism A(q);
//   * machine-level counter tracks "utilization" (assigned / pool) and
//     "active jobs", sampled at every allocation decision;
//   * instants for crashes and completions.
//
// One simulated step maps to one trace microsecond.
#pragma once

#include <cstdint>

#include "obs/event_bus.hpp"
#include "obs/perfetto.hpp"

namespace abg::obs {

/// Records one run's events into a caller-owned PerfettoTrace.
class SimTraceSink final : public Sink {
 public:
  /// pid of the machine process track; distinct pids keep multiple
  /// recorded runs apart in one trace file.
  explicit SimTraceSink(PerfettoTrace& trace, std::int64_t pid = 1)
      : trace_(&trace), pid_(pid) {}

  void on_event(const Event& event) override;

 private:
  PerfettoTrace* trace_;
  std::int64_t pid_;
};

}  // namespace abg::obs
