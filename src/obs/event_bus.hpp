// Event bus: the narrow seam between the engines and every observer.
//
// The engines hold one `EventBus*` (null by default) and publish obs::Event
// records through it; sinks — metrics aggregation, Perfetto trace
// recording, test probes — subscribe before the run.  The design center is
// hot-path cost: with no bus attached the engines pay a single pointer
// test per hook site, and a bus with no sinks is skipped the same way
// (engine wrappers pass the bus through only when it has subscribers).
//
// The bus is deliberately synchronous and unsynchronized: events are
// delivered inline on the simulating thread, in program order, and a bus
// must not be shared between concurrently simulating threads (the sweep
// runner builds one bus per run for exactly this reason).
#pragma once

#include <vector>

#include "obs/event.hpp"

namespace abg::obs {

/// Observer interface.  Sinks receive every published event in engine
/// order; they must not retain Event::stats past the callback and cannot
/// influence the simulation.
class Sink {
 public:
  virtual ~Sink();
  virtual void on_event(const Event& event) = 0;
};

/// Fan-out of one run's events to its subscribed sinks.  An EventBus is
/// itself a Sink, so buses can be chained (the sweep runner forwards each
/// run's private bus into a caller-supplied one).
class EventBus final : public Sink {
 public:
  /// Subscribes a sink (not owned; must outlive the run).  Null is
  /// ignored.  Sinks are invoked in subscription order.
  void subscribe(Sink* sink);

  /// True when at least one sink is subscribed.  Engines treat an inactive
  /// bus exactly like a null one.
  bool active() const { return !sinks_.empty(); }

  /// Delivers one event to every subscribed sink, in order.
  void publish(const Event& event) const {
    for (Sink* sink : sinks_) {
      sink->on_event(event);
    }
  }

  void on_event(const Event& event) override { publish(event); }

 private:
  std::vector<Sink*> sinks_;
};

}  // namespace abg::obs
