// Observability configuration carried by simulation and sweep configs.
//
// Kept to a forward declaration plus one pointer so including it from the
// widely-included config headers (sim/simulator.hpp, exp/run_spec.hpp)
// costs nothing.
#pragma once

namespace abg::obs {

class EventBus;

/// Observability hooks of one run.  Default (null bus) means fully off:
/// the engines take the pre-observability code path and pay one branch per
/// hook site.
struct ObsConfig {
  /// Event bus the run publishes to.  Not owned; must outlive the run and
  /// must not be shared between concurrently simulating threads.
  EventBus* event_bus = nullptr;
};

}  // namespace abg::obs
