// Observability events.
//
// One flat event record covers everything the simulation engines report:
// run lifecycle, job lifecycle (submit/admit/complete/crash), allocation
// decisions, per-quantum measurements and applied fault events.  The
// engines publish these through an obs::EventBus (see event_bus.hpp) at
// the points where the corresponding state change is committed; a run
// without a bus attached publishes nothing and takes exactly the
// pre-observability code path.
//
// Events are observation-only: no sink can influence the simulation, so
// attaching or detaching sinks never changes results — the golden-artifact
// tests pin this.
#pragma once

#include <cstdint>

#include "dag/job.hpp"
#include "fault/fault_plan.hpp"
#include "sched/quantum_stats.hpp"

namespace abg::obs {

/// What happened.  Field validity per kind is documented on Event.
enum class EventKind : std::uint8_t {
  /// The engine loop is about to start (after intake).
  kRunStart,
  /// One job entered the run (emitted per job right after kRunStart).
  kJobSubmit,
  /// A queued job was admitted to the active set.
  kJobAdmit,
  /// The allocator partitioned the machine over the active requests.
  kAllocation,
  /// One quantum of one job completed (including crash-voided and
  /// checkpoint-truncated quanta; the stats are what entered the trace).
  kQuantum,
  /// A job finished.
  kJobComplete,
  /// A job crash was applied to a running job.
  kJobCrash,
  /// A non-crash fault event (failure / repair / revocation) was applied.
  kFault,
  /// The hierarchical root re-split the machine over the groups'
  /// aggregated desires (sharded engine; once per rebalance epoch, from
  /// the coordinator thread between group barriers).
  kHierRebalance,
  /// Per-group utilization summary of a completed sharded run (one per
  /// group, before kRunEnd; job = group index).
  kHierGroupSummary,
  /// An open-system arrival entered the backlog (streaming engine; one
  /// per generated job, at the boundary that first saw its release).
  kOpenArrival,
  /// An open-system job completed and its runtime state was retired
  /// (streaming engine; carries the response time).
  kOpenDeparture,
  /// Aggregate open-run summary (streaming engine; once, before kRunEnd).
  kOpenSummary,
  /// The cluster router placed one submission on a machine (cluster
  /// driver; one per job, in submission order, from the coordinator
  /// thread before the machine loops start).
  kClusterRoute,
  /// The imbalance pass migrated a queued job between machines (cluster
  /// driver; at an epoch boundary, from the coordinator thread).
  kClusterMigrate,
  /// Per-machine utilization summary of a completed cluster run (one per
  /// machine, before kRunEnd; job = machine index).
  kClusterMachineSummary,
  /// The run completed; aggregate results are final.
  kRunEnd,
};

/// One observation.  `kind` and `step` are always valid; the remaining
/// fields are grouped by the kinds that set them and are default elsewhere.
struct Event {
  EventKind kind = EventKind::kRunStart;
  /// Global simulation step the event is anchored at.
  dag::Steps step = 0;
  /// Submission index of the job concerned (-1 for machine-level events).
  std::int64_t job = -1;

  // kRunStart
  int processors = 0;
  dag::Steps quantum_length = 0;
  std::int64_t job_count = 0;

  // kJobSubmit
  dag::TaskCount work = 0;
  dag::Steps critical_path = 0;

  // kJobAdmit
  int desire = 0;

  // kAllocation / kHierRebalance (pool = machine size; assigned = sum of
  // group budgets; desire = sum of aggregated group desires)
  int pool = 0;
  int assigned = 0;
  std::int64_t active_jobs = 0;

  // kHierRebalance / kHierGroupSummary
  int hier_groups = 0;
  /// kHierGroupSummary: processor cycles the group's jobs held over the
  /// run (work reuses the kJobSubmit field for cycles actually executed).
  dag::TaskCount allotted_cycles = 0;

  // kQuantum — points at the stats record as it entered the trace.  Valid
  // only for the duration of the sink callback; copy what you keep.
  const sched::QuantumStats* stats = nullptr;

  // kJobCrash
  dag::TaskCount lost_work = 0;
  /// Step from which the crashed job may be re-admitted.
  dag::Steps restart_step = 0;

  // kFault
  fault::FaultKind fault = fault::FaultKind::kProcessorFailure;

  // kOpenArrival / kOpenDeparture: jobs in the open system (queued +
  // active) right after the event.
  std::int64_t in_system = 0;
  // kOpenDeparture: completion − release of the departing job (work
  // reuses the kJobSubmit field for its executed work).
  dag::Steps response = 0;

  // kClusterRoute / kClusterMigrate / kClusterMachineSummary
  int cluster_machines = 0;
  /// Machine the job landed on (route/migrate) or the summarized machine.
  /// kClusterRoute: `work` reuses the kJobSubmit field for the cumulative
  /// work routed to that machine; kClusterMachineSummary: `work` is the
  /// cycles the machine executed, `allotted_cycles` the cycles it handed
  /// out, `processors` its size, `active_jobs` the jobs that finished on
  /// it.
  std::int64_t machine = -1;
  /// kClusterMigrate: source machine.
  std::int64_t machine_from = -1;
  /// kClusterMigrate: transfer debt charged to the migrated job (steps of
  /// delayed eligibility; its reallocation debt on re-placement is charged
  /// by the engine on admission).
  dag::Steps debt_steps = 0;

  // kOpenSummary
  std::int64_t open_admitted = 0;
  std::int64_t open_completed = 0;
  std::int64_t open_high_water = 0;
  std::int64_t open_stats_merges = 0;

  // kRunEnd
  dag::Steps makespan = 0;
};

}  // namespace abg::obs
