#include "obs/sweep_timeline.hpp"

namespace abg::obs {

void SweepTimeline::record(std::int64_t run_id, const std::string& label,
                           double start_seconds, double end_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = workers_.try_emplace(
      std::this_thread::get_id(),
      static_cast<std::int64_t>(workers_.size()));
  slices_.push_back(
      Slice{run_id, label, it->second, start_seconds, end_seconds});
}

std::size_t SweepTimeline::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slices_.size();
}

PerfettoTrace SweepTimeline::to_trace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PerfettoTrace trace;
  trace.set_process_name(1, "abg_sweep");
  std::int64_t worker_count = 0;
  for (const auto& [thread, worker] : workers_) {
    worker_count = std::max(worker_count, worker + 1);
  }
  for (std::int64_t w = 0; w < worker_count; ++w) {
    trace.set_thread_name(1, w + 1, "worker " + std::to_string(w));
  }
  for (const Slice& slice : slices_) {
    trace.add_slice(
        1, slice.worker + 1,
        "run " + std::to_string(slice.run_id) +
            (slice.label.empty() ? "" : " " + slice.label),
        slice.start_seconds * 1e6,
        (slice.end_seconds - slice.start_seconds) * 1e6, "",
        {{"run_id", static_cast<double>(slice.run_id)}});
  }
  return trace;
}

}  // namespace abg::obs
