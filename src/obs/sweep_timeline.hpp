// Wall-clock timeline of a sweep execution.
//
// The simulation trace (trace_sink.hpp) shows one run in simulated time;
// this shows the sweep engine itself in real time — one thread track per
// worker, one slice per executed run — so thread-pool utilization, stragglers
// and scheduling gaps are visible in ui.perfetto.dev.  Wall-clock data is
// nondeterministic by nature, so the timeline is a separate artifact and
// never feeds the deterministic records.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/perfetto.hpp"

namespace abg::obs {

/// Thread-safe collector of per-run execution slices.
class SweepTimeline {
 public:
  /// Records one run executed on the calling thread.  Times are seconds
  /// from any common epoch (the runner uses its start time).
  void record(std::int64_t run_id, const std::string& label,
              double start_seconds, double end_seconds);

  /// Number of recorded slices.
  std::size_t size() const;

  /// Renders the timeline: pid 1, one thread track per worker ("worker N"
  /// in first-seen order), one slice per run with its run id and label.
  PerfettoTrace to_trace() const;

 private:
  struct Slice {
    std::int64_t run_id;
    std::string label;
    std::int64_t worker;
    double start_seconds;
    double end_seconds;
  };

  mutable std::mutex mutex_;
  std::map<std::thread::id, std::int64_t> workers_;
  std::vector<Slice> slices_;
};

}  // namespace abg::obs
