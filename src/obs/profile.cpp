#include "obs/profile.hpp"

#include <utility>

namespace abg::obs {

Profiler::Scope::Scope(Profiler* profiler, std::string name,
                       std::int64_t items)
    : profiler_(profiler),
      name_(std::move(name)),
      items_(items),
      start_(std::chrono::steady_clock::now()) {}

Profiler::Scope::~Scope() {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  profiler_->record(name_, seconds, items_);
}

void Profiler::record(const std::string& name, double seconds,
                      std::int64_t items, std::int64_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  ProfileSpan& span = spans_[name];
  span.seconds += seconds;
  span.count += count;
  span.items += items;
}

ProfileSpan Profiler::span(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = spans_.find(name);
  return it != spans_.end() ? it->second : ProfileSpan{};
}

util::Json Profiler::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::Json spans = util::Json::object();
  for (const auto& [name, span] : spans_) {
    util::Json entry = util::Json::object();
    entry.set("seconds", util::Json::number(span.seconds));
    entry.set("count", util::Json::integer(span.count));
    entry.set("items", util::Json::integer(span.items));
    entry.set("items_per_second",
              util::Json::number(span.seconds > 0.0
                                     ? static_cast<double>(span.items) /
                                           span.seconds
                                     : 0.0));
    spans.set(name, std::move(entry));
  }
  util::Json root = util::Json::object();
  root.set("benchmark", util::Json::string("profile"));
  root.set("spans", std::move(spans));
  return root;
}

void Profiler::write(std::ostream& os) const {
  to_json().write(os);
  os << "\n";
}

}  // namespace abg::obs
