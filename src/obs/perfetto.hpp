// Chrome/Perfetto trace-event JSON builder.
//
// Emits the legacy Chrome trace-event format ("traceEvents" array of
// phase-tagged records), which ui.perfetto.dev and chrome://tracing both
// load directly.  Only the phases the simulator needs are implemented:
//
//   M  metadata       process_name / thread_name track labels
//   X  complete slice duration event (ts + dur), one per quantum
//   i  instant        point event (crashes, completions)
//   C  counter        numeric series (d(q), a(q), A(q), utilization)
//
// Timestamps are microseconds in the format; the simulation sinks map one
// simulated step to one microsecond, so simulated time reads directly off
// the Perfetto timeline.  Serialization goes through util/json, so a trace
// built from deterministic inputs is byte-identical across runs.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace abg::obs {

/// Builder for one trace file.  Methods append events in call order
/// (Perfetto sorts by timestamp on load, so order only needs to be
/// deterministic, not sorted).
class PerfettoTrace {
 public:
  using Args = std::vector<std::pair<std::string, double>>;

  /// Labels a process track.
  void set_process_name(std::int64_t pid, const std::string& name);

  /// Labels a thread track within a process.
  void set_thread_name(std::int64_t pid, std::int64_t tid,
                       const std::string& name);

  /// Adds a complete slice ("X").  `cname` selects a Chrome reserved color
  /// ("good", "bad", "terrible", "grey", ...); empty omits the field.
  void add_slice(std::int64_t pid, std::int64_t tid, const std::string& name,
                 double ts_us, double dur_us, const std::string& cname = {},
                 const Args& args = {});

  /// Adds an instant event ("i", thread scope).
  void add_instant(std::int64_t pid, std::int64_t tid,
                   const std::string& name, double ts_us);

  /// Adds one sample of a counter track ("C").  Multiple series on the
  /// same track are passed as multiple args entries (e.g. {"d",4},{"a",2}).
  void add_counter(std::int64_t pid, const std::string& track, double ts_us,
                   const Args& series);

  /// Number of events added so far (metadata included).
  std::size_t event_count() const { return events_.size(); }

  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  util::Json to_json() const;

  /// Serializes to_json() with a trailing newline.
  void write(std::ostream& os) const;

 private:
  /// Shared header of every event record.
  util::Json base_event(const char* phase, const std::string& name,
                        std::int64_t pid) const;

  std::vector<util::Json> events_;
};

}  // namespace abg::obs
