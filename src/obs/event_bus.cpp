#include "obs/event_bus.hpp"

namespace abg::obs {

Sink::~Sink() = default;

void EventBus::subscribe(Sink* sink) {
  if (sink != nullptr) {
    sinks_.push_back(sink);
  }
}

}  // namespace abg::obs
