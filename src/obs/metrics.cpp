#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

namespace abg::obs {

void Gauge::set(double value) {
  value_ = value;
  set_ = true;
}

void Gauge::merge(const Gauge& other) {
  if (!other.set_) {
    return;
  }
  value_ = set_ ? std::max(value_, other.value_) : other.value_;
  set_ = true;
}

namespace {

/// Bucket index of a sample: 0 for values < 1, else 1 + floor(log2 v),
/// capped at the last bucket.
int bucket_of(double value) {
  if (!(value >= 1.0)) {
    return 0;
  }
  const int exponent = std::ilogb(value);
  return std::min(Histogram::kBuckets - 1, exponent + 1);
}

/// Upper bound of bucket `i`: 1 for bucket 0, else 2^i.
double bucket_upper(int i) { return i == 0 ? 1.0 : std::ldexp(1.0, i); }

}  // namespace

void Histogram::observe(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_of(value)];
}

double Histogram::min() const {
  return count_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double Histogram::max() const {
  return count_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
}

double Histogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_)
                    : std::numeric_limits<double>::quiet_NaN();
}

double Histogram::quantile(double q) const {
  if (count_ == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::clamp(bucket_upper(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) {
    counters_[name].merge(counter);
  }
  for (const auto& [name, gauge] : other.gauges_) {
    gauges_[name].merge(gauge);
  }
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].merge(histogram);
  }
}

util::Json MetricsRegistry::to_json() const {
  util::Json counters = util::Json::object();
  for (const auto& [name, counter] : counters_) {
    counters.set(name, util::Json::integer(counter.value()));
  }
  util::Json gauges = util::Json::object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.set(name, util::Json::number(gauge.value()));
  }
  util::Json histograms = util::Json::object();
  for (const auto& [name, histogram] : histograms_) {
    util::Json h = util::Json::object();
    h.set("count", util::Json::integer(histogram.count()));
    h.set("sum", util::Json::number(histogram.sum()));
    h.set("min", util::Json::number(histogram.min()));
    h.set("max", util::Json::number(histogram.max()));
    h.set("mean", util::Json::number(histogram.mean()));
    h.set("p50", util::Json::number(histogram.quantile(0.5)));
    h.set("p95", util::Json::number(histogram.quantile(0.95)));
    int last = -1;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (histogram.bucket(i) > 0) {
        last = i;
      }
    }
    util::Json buckets = util::Json::array();
    for (int i = 0; i <= last; ++i) {
      buckets.push(util::Json::integer(histogram.bucket(i)));
    }
    h.set("buckets", std::move(buckets));
    histograms.set(name, std::move(h));
  }
  util::Json root = util::Json::object();
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  return root;
}

void MetricsRegistry::write(std::ostream& os) const {
  to_json().write(os);
  os << "\n";
}

}  // namespace abg::obs
