#include "obs/trace_sink.hpp"

#include <string>

namespace abg::obs {

namespace {

/// Chrome reserved color for a quantum's desire-vs-allotment regime.
const char* regime_color(const sched::QuantumStats& q) {
  if (q.work == 0) {
    return "grey";  // crash-voided or pure-migration quantum
  }
  return q.deprived() ? "terrible" : "good";
}

}  // namespace

void SimTraceSink::on_event(const Event& event) {
  PerfettoTrace& trace = *trace_;
  switch (event.kind) {
    case EventKind::kRunStart:
      trace.set_process_name(
          pid_, "abg machine P=" + std::to_string(event.processors) +
                    " L=" + std::to_string(event.quantum_length));
      break;
    case EventKind::kJobSubmit:
      trace.set_thread_name(
          pid_, event.job + 1,
          "job " + std::to_string(event.job) +
              " (T1=" + std::to_string(event.work) +
              ", Tinf=" + std::to_string(event.critical_path) + ")");
      break;
    case EventKind::kJobAdmit:
      trace.add_instant(pid_, event.job + 1, "admit",
                        static_cast<double>(event.step));
      break;
    case EventKind::kAllocation: {
      const double utilization =
          event.pool > 0 ? static_cast<double>(event.assigned) /
                               static_cast<double>(event.pool)
                         : 0.0;
      trace.add_counter(pid_, "utilization",
                        static_cast<double>(event.step),
                        {{"busy", utilization}});
      trace.add_counter(pid_, "active jobs", static_cast<double>(event.step),
                        {{"jobs", static_cast<double>(event.active_jobs)}});
      break;
    }
    case EventKind::kQuantum: {
      const sched::QuantumStats& q = *event.stats;
      const auto ts = static_cast<double>(q.start_step);
      // The allotment is held for the whole quantum even when the job
      // finishes early (the paper's waste accounting); the final quantum's
      // slice is trimmed to the steps actually used.
      const auto dur =
          static_cast<double>(q.finished ? q.steps_used : q.length);
      const std::string job = std::to_string(event.job);
      std::string slice_name = "q";
      slice_name += std::to_string(q.index);
      std::string da_track = "job ";
      da_track += job;
      std::string a_track = da_track;
      da_track += " d/a";
      a_track += " A";
      trace.add_slice(pid_, event.job + 1, slice_name, ts, dur,
                      regime_color(q),
                      {{"d", static_cast<double>(q.request)},
                       {"a", static_cast<double>(q.allotment)},
                       {"p", static_cast<double>(q.available)},
                       {"work", static_cast<double>(q.work)},
                       {"cpl", q.cpl},
                       {"A", q.average_parallelism()}});
      trace.add_counter(pid_, da_track, ts,
                        {{"d", static_cast<double>(q.request)},
                         {"a", static_cast<double>(q.allotment)}});
      trace.add_counter(pid_, a_track, ts, {{"A", q.average_parallelism()}});
      break;
    }
    case EventKind::kJobComplete:
      trace.add_instant(pid_, event.job + 1, "complete",
                        static_cast<double>(event.step));
      break;
    case EventKind::kJobCrash:
      trace.add_instant(pid_, event.job + 1, "crash",
                        static_cast<double>(event.step));
      break;
    case EventKind::kFault:
      trace.add_instant(pid_, 0, "fault", static_cast<double>(event.step));
      break;
    case EventKind::kHierRebalance:
      trace.add_counter(pid_, "hier budget",
                        static_cast<double>(event.step),
                        {{"assigned", static_cast<double>(event.assigned)},
                         {"desire", static_cast<double>(event.desire)}});
      break;
    case EventKind::kHierGroupSummary:
      break;  // aggregate-only; no timeline anchor
    case EventKind::kOpenArrival:
      trace.add_counter(pid_, "open in-system",
                        static_cast<double>(event.step),
                        {{"jobs", static_cast<double>(event.in_system)}});
      break;
    case EventKind::kOpenDeparture:
      trace.add_instant(pid_, event.job + 1, "depart",
                        static_cast<double>(event.step));
      trace.add_counter(pid_, "open in-system",
                        static_cast<double>(event.step),
                        {{"jobs", static_cast<double>(event.in_system)}});
      break;
    case EventKind::kOpenSummary:
      break;  // aggregate-only; no timeline anchor
    case EventKind::kClusterRoute:
      // One counter track per machine: the cumulative work the router has
      // placed on it, sampled at each placement.
      trace.add_counter(pid_,
                        "cluster m" + std::to_string(event.machine) +
                            " routed work",
                        static_cast<double>(event.step),
                        {{"work", static_cast<double>(event.work)}});
      break;
    case EventKind::kClusterMigrate:
      trace.add_instant(pid_, event.job + 1,
                        "migrate m" + std::to_string(event.machine_from) +
                            "->m" + std::to_string(event.machine),
                        static_cast<double>(event.step));
      break;
    case EventKind::kClusterMachineSummary:
      // One counter track per machine: its end-of-run busy fraction
      // (executed over allotted cycles), anchored at its final clock.
      trace.add_counter(
          pid_, "cluster m" + std::to_string(event.machine) + " busy",
          static_cast<double>(event.step),
          {{"busy", event.allotted_cycles > 0
                        ? static_cast<double>(event.work) /
                              static_cast<double>(event.allotted_cycles)
                        : 0.0}});
      break;
    case EventKind::kRunEnd:
      // Close the machine counters at the makespan so the last sample
      // doesn't visually extend forever.
      trace.add_counter(pid_, "utilization",
                        static_cast<double>(event.makespan), {{"busy", 0.0}});
      trace.add_counter(pid_, "active jobs",
                        static_cast<double>(event.makespan), {{"jobs", 0.0}});
      break;
  }
}

}  // namespace abg::obs
