#include "obs/perfetto.hpp"

namespace abg::obs {

namespace {

/// ts values are step counts mapped to integral microseconds; emit them as
/// integers when exact so traces stay compact and byte-stable.
util::Json number_or_integer(double value) {
  const auto as_int = static_cast<std::int64_t>(value);
  if (static_cast<double>(as_int) == value) {
    return util::Json::integer(as_int);
  }
  return util::Json::number(value);
}

util::Json args_object(const PerfettoTrace::Args& args) {
  util::Json out = util::Json::object();
  for (const auto& [key, value] : args) {
    out.set(key, number_or_integer(value));
  }
  return out;
}

}  // namespace

util::Json PerfettoTrace::base_event(const char* phase,
                                     const std::string& name,
                                     std::int64_t pid) const {
  util::Json event = util::Json::object();
  event.set("name", util::Json::string(name));
  event.set("ph", util::Json::string(phase));
  event.set("pid", util::Json::integer(pid));
  return event;
}

void PerfettoTrace::set_process_name(std::int64_t pid,
                                     const std::string& name) {
  util::Json event = base_event("M", "process_name", pid);
  event.set("args",
            util::Json::object().set("name", util::Json::string(name)));
  events_.push_back(std::move(event));
}

void PerfettoTrace::set_thread_name(std::int64_t pid, std::int64_t tid,
                                    const std::string& name) {
  util::Json event = base_event("M", "thread_name", pid);
  event.set("tid", util::Json::integer(tid));
  event.set("args",
            util::Json::object().set("name", util::Json::string(name)));
  events_.push_back(std::move(event));
}

void PerfettoTrace::add_slice(std::int64_t pid, std::int64_t tid,
                              const std::string& name, double ts_us,
                              double dur_us, const std::string& cname,
                              const Args& args) {
  util::Json event = base_event("X", name, pid);
  event.set("tid", util::Json::integer(tid));
  event.set("ts", number_or_integer(ts_us));
  event.set("dur", number_or_integer(dur_us));
  if (!cname.empty()) {
    event.set("cname", util::Json::string(cname));
  }
  if (!args.empty()) {
    event.set("args", args_object(args));
  }
  events_.push_back(std::move(event));
}

void PerfettoTrace::add_instant(std::int64_t pid, std::int64_t tid,
                                const std::string& name, double ts_us) {
  util::Json event = base_event("i", name, pid);
  event.set("tid", util::Json::integer(tid));
  event.set("ts", number_or_integer(ts_us));
  event.set("s", util::Json::string("t"));
  events_.push_back(std::move(event));
}

void PerfettoTrace::add_counter(std::int64_t pid, const std::string& track,
                                double ts_us, const Args& series) {
  util::Json event = base_event("C", track, pid);
  event.set("ts", number_or_integer(ts_us));
  event.set("args", args_object(series));
  events_.push_back(std::move(event));
}

util::Json PerfettoTrace::to_json() const {
  util::Json trace_events = util::Json::array();
  for (const util::Json& event : events_) {
    trace_events.push(event);
  }
  util::Json root = util::Json::object();
  root.set("traceEvents", std::move(trace_events));
  root.set("displayTimeUnit", util::Json::string("ms"));
  return root;
}

void PerfettoTrace::write(std::ostream& os) const {
  to_json().write(os);
  os << "\n";
}

}  // namespace abg::obs
