// Self-profiling: how fast is the simulator itself?
//
// A Profiler accumulates named spans — wall-clock seconds, invocation
// count, and an "items" tally (simulated steps, sweep runs) from which it
// derives items/second — and serializes them as BENCH_profile.json so the
// repository tracks a performance trajectory alongside the simulation
// artifacts.  Wall-clock numbers are inherently nondeterministic, which is
// why they live in their own artifact and never touch the deterministic
// records/metrics/trace outputs.
//
// The profiler is thread-safe (one mutex around the span map); Scope is
// the RAII way to time a region:
//
//   obs::Profiler profiler;
//   {
//     auto scope = profiler.time("engine.sync", simulated_steps);
//   }  // records on destruction
//   profiler.write(out);
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "util/json.hpp"

namespace abg::obs {

/// Accumulated measurements of one named region.
struct ProfileSpan {
  double seconds = 0.0;
  std::int64_t count = 0;
  std::int64_t items = 0;
};

/// Thread-safe span accumulator with JSON emission.
class Profiler {
 public:
  /// RAII timer; records into the profiler at destruction.
  class Scope {
   public:
    Scope(Profiler* profiler, std::string name, std::int64_t items);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    /// Adds to the item tally recorded when the scope closes (for counts
    /// only known after the timed work ran).
    void add_items(std::int64_t items) { items_ += items; }

   private:
    Profiler* profiler_;
    std::string name_;
    std::int64_t items_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Starts timing `name`; see Scope.
  Scope time(std::string name, std::int64_t items = 0) {
    return Scope(this, std::move(name), items);
  }

  /// Records one finished measurement directly.
  void record(const std::string& name, double seconds, std::int64_t items,
              std::int64_t count = 1);

  /// Snapshot of one span; zeros when the span was never recorded.
  ProfileSpan span(const std::string& name) const;

  /// {"benchmark":"profile","spans":{name:{seconds,count,items,
  /// items_per_second}}} — keys sorted by name.
  util::Json to_json() const;

  /// Serializes to_json() with a trailing newline (the BENCH_profile.json
  /// format).
  void write(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, ProfileSpan> spans_;
};

}  // namespace abg::obs
