#include "metrics/lower_bounds.hpp"

#include <algorithm>
#include <stdexcept>

namespace abg::metrics {

namespace {

void check_inputs(const std::vector<JobSummary>& jobs, int processors) {
  if (jobs.empty()) {
    throw std::invalid_argument("lower bounds: empty job list");
  }
  if (processors < 1) {
    throw std::invalid_argument("lower bounds: processors must be >= 1");
  }
}

}  // namespace

double makespan_lower_bound(const std::vector<JobSummary>& jobs,
                            int processors) {
  check_inputs(jobs, processors);
  double total_work = 0.0;
  double max_span = 0.0;
  for (const JobSummary& j : jobs) {
    total_work += static_cast<double>(j.work);
    max_span = std::max(
        max_span, static_cast<double>(j.release + j.critical_path));
  }
  return std::max(total_work / static_cast<double>(processors), max_span);
}

double response_lower_bound(const std::vector<JobSummary>& jobs,
                            int processors) {
  check_inputs(jobs, processors);
  const double n = static_cast<double>(jobs.size());

  double cpl_sum = 0.0;
  std::vector<double> works;
  works.reserve(jobs.size());
  for (const JobSummary& j : jobs) {
    cpl_sum += static_cast<double>(j.critical_path);
    works.push_back(static_cast<double>(j.work));
  }
  const double cpl_bound = cpl_sum / n;

  // Squashed-area bound: shortest-work-first on a perfectly parallelizable
  // squashed workload.
  std::sort(works.begin(), works.end());
  double prefix = 0.0;
  double completion_sum = 0.0;
  for (const double w : works) {
    prefix += w;
    completion_sum += prefix / static_cast<double>(processors);
  }
  const double squashed_bound = completion_sum / n;

  return std::max(cpl_bound, squashed_bound);
}

}  // namespace abg::metrics
