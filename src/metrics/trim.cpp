#include "metrics/trim.hpp"

#include <algorithm>
#include <stdexcept>

namespace abg::metrics {

std::vector<QuantumClass> classify_quanta(const sim::JobTrace& trace) {
  std::vector<QuantumClass> classes;
  classes.reserve(trace.quanta.size());
  for (const auto& q : trace.quanta) {
    if (!q.full) {
      classes.push_back(QuantumClass::kNonFull);
      continue;
    }
    const bool deprived = q.deprived();
    const bool under_parallel =
        static_cast<double>(q.allotment) < q.average_parallelism();
    classes.push_back(deprived && under_parallel ? QuantumClass::kAccounted
                                                 : QuantumClass::kDeductible);
  }
  return classes;
}

TrimBreakdown count_classes(const std::vector<QuantumClass>& classes) {
  TrimBreakdown b;
  for (const QuantumClass c : classes) {
    switch (c) {
      case QuantumClass::kAccounted:
        ++b.accounted;
        break;
      case QuantumClass::kDeductible:
        ++b.deductible;
        break;
      case QuantumClass::kNonFull:
        ++b.non_full;
        break;
    }
  }
  return b;
}

double trimmed_availability(const std::vector<int>& availability_per_quantum,
                            dag::Steps quantum_length, dag::Steps trim_steps) {
  if (quantum_length < 1) {
    throw std::invalid_argument(
        "trimmed_availability: quantum_length must be >= 1");
  }
  if (trim_steps < 0) {
    throw std::invalid_argument(
        "trimmed_availability: trim_steps must be >= 0");
  }
  if (availability_per_quantum.empty()) {
    return 0.0;
  }
  const std::size_t trim_quanta = std::min<std::size_t>(
      availability_per_quantum.size(),
      static_cast<std::size_t>(
          (trim_steps + quantum_length - 1) / quantum_length));
  std::vector<int> sorted = availability_per_quantum;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double sum = 0.0;
  const std::size_t kept = sorted.size() - trim_quanta;
  for (std::size_t i = trim_quanta; i < sorted.size(); ++i) {
    sum += static_cast<double>(sorted[i]);
  }
  return kept > 0 ? sum / static_cast<double>(kept) : 0.0;
}

double trimmed_availability(const sim::JobTrace& trace,
                            dag::Steps trim_steps) {
  const dag::Steps quantum_length =
      trace.quanta.empty() ? 1 : trace.quanta.front().length;
  return trimmed_availability(trace.availability_series(), quantum_length,
                              trim_steps);
}

}  // namespace abg::metrics
