// Theoretical lower bounds on makespan and mean response time.
//
// Figure 6 normalizes the schedulers' global performance by these bounds
// (the methodology of He et al. [11, 12], which the paper follows).  For a
// job set J on P processors:
//
//   Makespan:  M* = max(  Σ_j T1_j / P ,  max_j (release_j + T∞_j)  )
//   — the machine must execute all work, and every job needs at least its
//   critical path after its release.
//
//   Mean response time (batched release):
//   R* = max(  (1/n) Σ_j T∞_j ,  squashed-area bound  )
//   where the squashed-area bound processes jobs in shortest-work-first
//   order at full machine speed: with T1 sorted ascending,
//   R*_sq = (1/n) Σ_j ( Σ_{k<=j} T1_k ) / P.
#pragma once

#include <vector>

#include "dag/job.hpp"

namespace abg::metrics {

/// Intrinsic description of one job for lower-bound purposes.
struct JobSummary {
  dag::TaskCount work = 0;
  dag::Steps critical_path = 0;
  dag::Steps release = 0;
};

/// Makespan lower bound for arbitrary release times.  Requires a non-empty
/// job list and P >= 1.
double makespan_lower_bound(const std::vector<JobSummary>& jobs,
                            int processors);

/// Mean-response-time lower bound for batched jobs (releases ignored).
/// Requires a non-empty job list and P >= 1.
double response_lower_bound(const std::vector<JobSummary>& jobs,
                            int processors);

}  // namespace abg::metrics
