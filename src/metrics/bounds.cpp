#include "metrics/bounds.hpp"

#include <stdexcept>

namespace abg::metrics {

namespace {

void check_common(double transition_factor, double convergence_rate) {
  if (!(transition_factor >= 1.0)) {
    throw std::invalid_argument("bounds: transition factor must be >= 1");
  }
  if (convergence_rate < 0.0 || convergence_rate >= 1.0) {
    throw std::invalid_argument("bounds: convergence rate must be in [0, 1)");
  }
}

void check_rate_condition(double transition_factor, double convergence_rate) {
  if (!(convergence_rate < 1.0 / transition_factor)) {
    throw std::domain_error(
        "bounds: requires r < 1/C_L; the ratio is unbounded otherwise");
  }
}

}  // namespace

Lemma2Bounds lemma2_bounds(double transition_factor, double convergence_rate) {
  check_common(transition_factor, convergence_rate);
  check_rate_condition(transition_factor, convergence_rate);
  Lemma2Bounds b;
  b.lower_ratio =
      (1.0 - convergence_rate) / (transition_factor - convergence_rate);
  b.upper_ratio = transition_factor * (1.0 - convergence_rate) /
                  (1.0 - transition_factor * convergence_rate);
  return b;
}

double theorem3_trim_steps(dag::Steps critical_path, double transition_factor,
                           double convergence_rate,
                           dag::Steps quantum_length) {
  check_common(transition_factor, convergence_rate);
  const double coeff = (transition_factor + 1.0 - 2.0 * convergence_rate) /
                       (1.0 - convergence_rate);
  return coeff * static_cast<double>(critical_path) +
         static_cast<double>(quantum_length);
}

double theorem3_time_bound(dag::TaskCount work, dag::Steps critical_path,
                           double transition_factor, double convergence_rate,
                           double trimmed_availability,
                           dag::Steps quantum_length) {
  check_common(transition_factor, convergence_rate);
  const double cpl_term = theorem3_trim_steps(
      critical_path, transition_factor, convergence_rate, quantum_length);
  const double speedup_term =
      trimmed_availability > 0.0
          ? 2.0 * static_cast<double>(work) / trimmed_availability
          : 0.0;
  return speedup_term + cpl_term;
}

double theorem4_waste_bound(dag::TaskCount work, double transition_factor,
                            double convergence_rate, int processors,
                            dag::Steps quantum_length) {
  check_common(transition_factor, convergence_rate);
  check_rate_condition(transition_factor, convergence_rate);
  const double coeff = transition_factor * (1.0 - convergence_rate) /
                       (1.0 - transition_factor * convergence_rate);
  return coeff * static_cast<double>(work) +
         static_cast<double>(processors) *
             static_cast<double>(quantum_length);
}

double theorem5_makespan_bound(double makespan_lower_bound,
                               double max_transition_factor,
                               double convergence_rate,
                               dag::Steps quantum_length, std::size_t jobs) {
  check_common(max_transition_factor, convergence_rate);
  check_rate_condition(max_transition_factor, convergence_rate);
  const double c_waste =
      (max_transition_factor + 1.0 -
       2.0 * max_transition_factor * convergence_rate) /
      (1.0 - max_transition_factor * convergence_rate);
  const double c_time =
      (max_transition_factor + 1.0 - 2.0 * convergence_rate) /
      (1.0 - convergence_rate);
  return (c_waste + c_time) * makespan_lower_bound +
         static_cast<double>(quantum_length) *
             static_cast<double>(jobs + 2);
}

double theorem5_response_bound(double response_lower_bound,
                               double max_transition_factor,
                               double convergence_rate,
                               dag::Steps quantum_length, std::size_t jobs) {
  check_common(max_transition_factor, convergence_rate);
  check_rate_condition(max_transition_factor, convergence_rate);
  const double c_waste =
      (2.0 * max_transition_factor + 2.0 -
       4.0 * max_transition_factor * convergence_rate) /
      (1.0 - max_transition_factor * convergence_rate);
  const double c_time =
      (max_transition_factor + 1.0 - 2.0 * convergence_rate) /
      (1.0 - convergence_rate);
  return (c_waste + c_time) * response_lower_bound +
         static_cast<double>(quantum_length) *
             static_cast<double>(jobs + 2);
}

}  // namespace abg::metrics
