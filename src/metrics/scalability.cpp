#include "metrics/scalability.hpp"

#include <stdexcept>

namespace abg::metrics {

std::vector<ScalabilityPoint> scalability_curve(
    const dag::Job& job, const std::vector<int>& processor_counts) {
  if (processor_counts.empty()) {
    throw std::invalid_argument("scalability_curve: no processor counts");
  }
  const double serial_time = static_cast<double>(job.total_work());
  std::vector<ScalabilityPoint> curve;
  curve.reserve(processor_counts.size());
  for (const int p : processor_counts) {
    if (p < 1) {
      throw std::invalid_argument(
          "scalability_curve: processor counts must be >= 1");
    }
    const auto clone = job.fresh_clone();
    dag::Steps time = 0;
    while (!clone->finished()) {
      // Large budget per call keeps the fast closed-form path effective.
      const dag::QuantumExecution exec = clone->run_quantum(
          p, 1 << 20, dag::PickOrder::kBreadthFirst);
      time += exec.steps;
      if (exec.work == 0 && !exec.finished) {
        throw std::logic_error("scalability_curve: job made no progress");
      }
    }
    ScalabilityPoint point;
    point.processors = p;
    point.time = time;
    point.speedup = time > 0 ? serial_time / static_cast<double>(time) : 0.0;
    point.efficiency = point.speedup / static_cast<double>(p);
    curve.push_back(point);
  }
  return curve;
}

std::vector<int> power_of_two_counts(int max_processors) {
  if (max_processors < 1) {
    throw std::invalid_argument(
        "power_of_two_counts: max_processors must be >= 1");
  }
  std::vector<int> counts;
  for (int p = 1; p <= max_processors; p *= 2) {
    counts.push_back(p);
    if (p > max_processors / 2) {
      break;
    }
  }
  return counts;
}

}  // namespace abg::metrics
