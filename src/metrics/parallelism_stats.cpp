#include "metrics/parallelism_stats.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace abg::metrics {

namespace {

/// Parallelism values of the trace's full quanta, in order.
std::vector<double> full_quantum_parallelism(const sim::JobTrace& trace) {
  std::vector<double> out;
  out.reserve(trace.quanta.size());
  for (const auto& q : trace.quanta) {
    if (q.full && q.cpl > 0.0) {
      out.push_back(q.average_parallelism());
    }
  }
  return out;
}

}  // namespace

double transition_factor_of_series(const std::vector<double>& parallelism,
                                   bool seed_initial) {
  double factor = 1.0;
  double prev = seed_initial ? 1.0 : 0.0;
  bool have_prev = seed_initial;
  for (const double a : parallelism) {
    if (!(a > 0.0)) {
      throw std::invalid_argument(
          "transition_factor_of_series: non-positive parallelism");
    }
    if (have_prev) {
      factor = std::max({factor, a / prev, prev / a});
    }
    prev = a;
    have_prev = true;
  }
  return factor;
}

double empirical_transition_factor(const sim::JobTrace& trace) {
  return transition_factor_of_series(full_quantum_parallelism(trace),
                                     /*seed_initial=*/true);
}

double parallelism_change_frequency(const sim::JobTrace& trace,
                                    double relative_threshold) {
  if (relative_threshold < 0.0) {
    throw std::invalid_argument(
        "parallelism_change_frequency: negative threshold");
  }
  const std::vector<double> series = full_quantum_parallelism(trace);
  if (series.size() < 2) {
    return 0.0;
  }
  std::size_t changes = 0;
  for (std::size_t i = 1; i < series.size(); ++i) {
    const double rel = std::abs(series[i] - series[i - 1]) / series[i - 1];
    if (rel > relative_threshold) {
      ++changes;
    }
  }
  return static_cast<double>(changes) /
         static_cast<double>(series.size() - 1);
}

double parallelism_variance(const sim::JobTrace& trace) {
  util::RunningStats stats;
  for (const double a : full_quantum_parallelism(trace)) {
    stats.add(a);
  }
  return stats.variance();
}

}  // namespace abg::metrics
