// Trim analysis (Section 6.1).
//
// An adversarial OS allocator can offer many processors exactly when a
// job's parallelism is low, so no non-clairvoyant task scheduler can
// achieve linear speedup with respect to raw average availability.  Trim
// analysis removes ("trims") the R time steps with the highest processor
// availability and measures speedup against the average availability of
// the rest — the R-trimmed availability.
//
// The companion classification splits a job's full quanta into
//   * accounted  — deprived (a(q) < d(q)) and under-parallel
//                  (a(q) < A(q)): counted toward speedup;
//   * deductible — a(q) = d(q) or a(q) >= A(q): trimmed from the analysis;
// with at most one non-full final quantum.
#pragma once

#include <vector>

#include "sim/trace.hpp"

namespace abg::metrics {

/// Classification of one quantum under trim analysis.
enum class QuantumClass {
  kAccounted,
  kDeductible,
  kNonFull,
};

/// Classifies every quantum of a trace (Section 6.1's definitions).
std::vector<QuantumClass> classify_quanta(const sim::JobTrace& trace);

/// Counts per classification.
struct TrimBreakdown {
  std::size_t accounted = 0;
  std::size_t deductible = 0;
  std::size_t non_full = 0;
};
TrimBreakdown count_classes(const std::vector<QuantumClass>& classes);

/// R-trimmed availability: removes the ceil(R/L) quanta with the highest
/// availability (covering at least `trim_steps` steps) and returns the
/// average availability over the remaining quanta.  Returns 0 when every
/// quantum is trimmed.  Requires quantum_length >= 1 and trim_steps >= 0.
double trimmed_availability(const std::vector<int>& availability_per_quantum,
                            dag::Steps quantum_length, dag::Steps trim_steps);

/// Convenience overload reading the availability series from a trace.
double trimmed_availability(const sim::JobTrace& trace,
                            dag::Steps trim_steps);

}  // namespace abg::metrics
