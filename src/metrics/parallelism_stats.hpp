// Statistics over a job's realized parallelism series A(1), A(2), ...
//
// The transition factor C_L (Section 5.2) is the paper's new job
// characteristic: the maximal ratio between the average parallelism of any
// two adjacent full quanta, with A(0) defined as 1.  We measure it
// empirically from a trace.  The module also provides the §9 "future work"
// characteristics — the frequency and variance of parallelism changes.
#pragma once

#include <vector>

#include "sim/trace.hpp"

namespace abg::metrics {

/// Empirical transition factor over consecutive full quanta of the trace,
/// seeded with A(0) = 1: max over adjacent pairs of
/// max(A(q)/A(q−1), A(q−1)/A(q)).  Returns 1 for an empty or all-non-full
/// trace.
double empirical_transition_factor(const sim::JobTrace& trace);

/// Same computation on a raw parallelism series (every entry treated as a
/// full quantum).  `seed_initial` prepends A(0) = 1.
double transition_factor_of_series(const std::vector<double>& parallelism,
                                   bool seed_initial = true);

/// Fraction of adjacent full-quantum pairs whose parallelism changed by
/// more than `relative_threshold` (e.g. 0.1 = 10%).  One of the paper's
/// suggested alternative characteristics.
double parallelism_change_frequency(const sim::JobTrace& trace,
                                    double relative_threshold = 0.1);

/// Variance of the parallelism over full quanta (the paper's other
/// suggested alternative characteristic).  0 when fewer than two full
/// quanta exist.
double parallelism_variance(const sim::JobTrace& trace);

}  // namespace abg::metrics
