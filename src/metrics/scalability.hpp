// Scalability analysis: speedup and efficiency curves.
//
// Classic Amdahl-style characterization of a malleable job on this
// machine model: run the job at fixed allotments p = 1..P and report
// T(p), speedup T(1)/T(p) and efficiency speedup/p.  Since tasks are unit
// size and the executor is greedy, T(1) = T1 exactly and T(p) is bounded
// below by max(T1/p, T∞) — the curves expose where the job's parallelism
// profile stops scaling, which is precisely the information an adaptive
// scheduler exploits quantum by quantum.
#pragma once

#include <vector>

#include "dag/job.hpp"

namespace abg::metrics {

/// One point of the scalability curve.
struct ScalabilityPoint {
  int processors = 0;
  dag::Steps time = 0;
  double speedup = 0.0;
  double efficiency = 0.0;
};

/// Runs fresh clones of `job` to completion at every allotment in
/// `processor_counts` (each entry >= 1) using greedy breadth-first
/// execution with the allotment held fixed, and returns the curve.
/// The job itself is not modified.
std::vector<ScalabilityPoint> scalability_curve(
    const dag::Job& job, const std::vector<int>& processor_counts);

/// Convenience: powers of two 1, 2, 4, ... up to `max_processors`
/// (inclusive when itself a power of two).
std::vector<int> power_of_two_counts(int max_processors);

}  // namespace abg::metrics
