#include "metrics/scheduler_diagnostics.hpp"

#include <cstdlib>
#include <stdexcept>

namespace abg::metrics {

UtilizationBreakdown classify_utilization(const sim::JobTrace& trace,
                                          double utilization) {
  if (!(utilization > 0.0) || utilization >= 1.0) {
    throw std::invalid_argument(
        "classify_utilization: threshold must lie in (0, 1)");
  }
  UtilizationBreakdown b;
  for (const auto& q : trace.quanta) {
    const double capacity = static_cast<double>(q.allotment) *
                            static_cast<double>(q.length);
    if (static_cast<double>(q.work) < utilization * capacity) {
      ++b.inefficient;
    } else if (q.deprived()) {
      ++b.efficient_deprived;
    } else {
      ++b.efficient_satisfied;
    }
  }
  return b;
}

std::size_t reallocation_count(const sim::JobTrace& trace) {
  std::size_t count = 0;
  int previous = 0;
  for (const auto& q : trace.quanta) {
    if (q.allotment != previous) {
      ++count;
    }
    previous = q.allotment;
  }
  return count;
}

dag::TaskCount processors_migrated(const sim::JobTrace& trace) {
  dag::TaskCount moved = 0;
  int previous = 0;
  for (const auto& q : trace.quanta) {
    moved += std::abs(q.allotment - previous);
    previous = q.allotment;
  }
  return moved;
}

double jain_slowdown_fairness(const sim::SimResult& result) {
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (const auto& t : result.jobs) {
    if (!t.finished() || t.critical_path <= 0) {
      continue;
    }
    const double slowdown = static_cast<double>(t.response_time()) /
                            static_cast<double>(t.critical_path);
    sum += slowdown;
    sum_sq += slowdown * slowdown;
    ++n;
  }
  if (n == 0 || sum_sq <= 0.0) {
    throw std::invalid_argument(
        "jain_slowdown_fairness: no finished jobs with positive critical "
        "path");
  }
  return sum * sum / (static_cast<double>(n) * sum_sq);
}

}  // namespace abg::metrics
