// The paper's analytic performance bounds (Lemma 2, Theorems 3–5),
// evaluated numerically so experiments can report measured-vs-bound.
//
// All bounds are parameterised by the job characteristics (T1, T∞, C_L),
// the machine (P, L) and ABG's convergence rate r.  The waste, makespan and
// mean-response-time bounds additionally require r < 1/C_L (the remark
// after Lemma 2); the evaluators throw std::domain_error when the
// precondition fails, mirroring the paper's caveat that the ratio is
// unbounded otherwise.
#pragma once

#include "dag/job.hpp"

namespace abg::metrics {

/// Lemma 2: request/parallelism ratio bounds for full quanta.
struct Lemma2Bounds {
  /// d(q) >= lower_ratio * A(q):  (1 − r) / (C_L − r).
  double lower_ratio = 0.0;
  /// d(q) <= upper_ratio * A(q):  C_L (1 − r) / (1 − C_L r);
  /// valid only when r < 1/C_L.
  double upper_ratio = 0.0;
};

/// Computes Lemma 2's ratios.  Requires C_L >= 1 and r in [0, 1); the upper
/// ratio additionally requires r < 1/C_L (throws std::domain_error).
Lemma2Bounds lemma2_bounds(double transition_factor, double convergence_rate);

/// Theorem 3's trim allowance: the number of steps trimmed,
/// (C_L + 1 − 2r)/(1 − r) · T∞ + L.
double theorem3_trim_steps(dag::Steps critical_path, double transition_factor,
                           double convergence_rate, dag::Steps quantum_length);

/// Theorem 3: running-time bound
///   T <= 2·T1/P̃ + (C_L + 1 − 2r)/(1 − r) · T∞ + L,
/// where P̃ is the trimmed processor availability (pass 0 to drop the
/// speedup term, e.g. when every quantum was trimmed).
double theorem3_time_bound(dag::TaskCount work, dag::Steps critical_path,
                           double transition_factor, double convergence_rate,
                           double trimmed_availability,
                           dag::Steps quantum_length);

/// Theorem 4: waste bound
///   W <= C_L (1 − r)/(1 − C_L r) · T1 + P·L.
/// Requires r < 1/C_L (throws std::domain_error).
double theorem4_waste_bound(dag::TaskCount work, double transition_factor,
                            double convergence_rate, int processors,
                            dag::Steps quantum_length);

/// Theorem 5 (Equation 10): makespan bound against the lower bound M*,
///   M <= (c_w + c_t)·M* + L·(|J| + 2),
/// with c_w = (C_L + 1 − 2 C_L r)/(1 − C_L r), c_t = (C_L + 1 − 2r)/(1 − r).
/// Requires r < 1/C_L.
double theorem5_makespan_bound(double makespan_lower_bound,
                               double max_transition_factor,
                               double convergence_rate,
                               dag::Steps quantum_length, std::size_t jobs);

/// Theorem 5 (Equation 11): mean-response-time bound against R* for batched
/// jobs, with c_w = (2 C_L + 2 − 4 C_L r)/(1 − C_L r).  Requires r < 1/C_L.
double theorem5_response_bound(double response_lower_bound,
                               double max_transition_factor,
                               double convergence_rate,
                               dag::Steps quantum_length, std::size_t jobs);

}  // namespace abg::metrics
