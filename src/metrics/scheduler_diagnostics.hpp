// Per-scheduler diagnostic classifications.
//
// A-Greedy's analysis (Agrawal et al., PPoPP'06) classifies each quantum
// by utilization and satisfaction: inefficient (usage below δ·a·L),
// efficient-and-satisfied (a = d), efficient-and-deprived (a < d).  The
// mix is a fingerprint of the feedback dynamics: a stable scheduler spends
// its life efficient-and-satisfied; A-Greedy's ping-pong alternates
// efficient-satisfied (doubling) with inefficient (halving) quanta.
// The module also counts reallocation events — the quantity the paper's
// introduction worries about and Section 7 never measures.
#pragma once

#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace abg::metrics {

/// Quantum mix under A-Greedy's utilization classification.
struct UtilizationBreakdown {
  std::size_t inefficient = 0;
  std::size_t efficient_satisfied = 0;
  std::size_t efficient_deprived = 0;

  std::size_t total() const {
    return inefficient + efficient_satisfied + efficient_deprived;
  }
};

/// Classifies every quantum of the trace with utilization threshold δ.
/// Requires 0 < utilization < 1.
UtilizationBreakdown classify_utilization(const sim::JobTrace& trace,
                                          double utilization = 0.8);

/// Number of quantum boundaries at which the allotment changed (the
/// reallocation events the paper's introduction calls out), counting the
/// initial placement.
std::size_t reallocation_count(const sim::JobTrace& trace);

/// Total processors moved across all reallocations: Σ |a(q) − a(q−1)|
/// with a(0) = 0.
dag::TaskCount processors_migrated(const sim::JobTrace& trace);

/// Jain's fairness index over per-job slowdowns (response time divided by
/// the job's critical path): (Σx)² / (n·Σx²) ∈ (0, 1], 1 = every job
/// slowed equally.  A multiprogrammed-fairness complement to makespan and
/// mean response time.  Requires at least one finished job.
double jain_slowdown_fairness(const sim::SimResult& result);

}  // namespace abg::metrics
