#include "workload/job_set.hpp"

#include <stdexcept>

namespace abg::workload {

std::vector<GeneratedJob> make_job_set(util::Rng& rng,
                                       const JobSetSpec& spec) {
  if (!(spec.load > 0.0)) {
    throw std::invalid_argument("make_job_set: load must be positive");
  }
  if (spec.processors < 1) {
    throw std::invalid_argument("make_job_set: processors must be >= 1");
  }
  if (!(spec.min_transition_factor >= 1.0) ||
      spec.max_transition_factor < spec.min_transition_factor) {
    throw std::invalid_argument("make_job_set: bad transition factor range");
  }

  const double target_parallelism =
      spec.load * static_cast<double>(spec.processors);
  std::vector<GeneratedJob> jobs;
  double accumulated = 0.0;
  while ((jobs.empty() || accumulated < target_parallelism) &&
         jobs.size() < static_cast<std::size_t>(spec.processors)) {
    ForkJoinSpec fj;
    fj.transition_factor = rng.log_uniform(spec.min_transition_factor,
                                           spec.max_transition_factor);
    fj.phase_pairs = spec.phase_pairs;
    fj.min_phase_levels = spec.min_phase_levels;
    fj.max_phase_levels = spec.max_phase_levels;

    GeneratedJob gj;
    gj.job = make_fork_join_job(rng, fj);
    gj.target_transition_factor = fj.transition_factor;
    gj.average_parallelism =
        static_cast<double>(gj.job->total_work()) /
        static_cast<double>(gj.job->critical_path());
    accumulated += gj.average_parallelism;
    jobs.push_back(std::move(gj));
  }
  return jobs;
}

double realized_load(const std::vector<GeneratedJob>& jobs, int processors) {
  if (processors < 1) {
    throw std::invalid_argument("realized_load: processors must be >= 1");
  }
  double sum = 0.0;
  for (const GeneratedJob& j : jobs) {
    sum += j.average_parallelism;
  }
  return sum / static_cast<double>(processors);
}

}  // namespace abg::workload
