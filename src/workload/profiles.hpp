// Parallelism-profile shapes.
//
// A level-width vector fully describes a ProfileJob; these helpers build
// the standard shapes used in tests, examples and ablations: constant
// parallelism (Figures 1 and 4), steps, ramps, square waves (fork-join
// alternation in its purest form) and bounded random walks.
#pragma once

#include <memory>
#include <vector>

#include "dag/job.hpp"
#include "util/rng.hpp"

namespace abg::workload {

/// `levels` levels of constant width.  Under any scheduler this job has
/// constant parallelism — the paper's Figure 1/4 synthetic workload.
std::vector<dag::TaskCount> constant_profile(dag::TaskCount width,
                                             dag::Steps levels);

/// A constant-parallelism job as `width` independent task chains of length
/// `levels` (no barriers).  Unlike the barrier profile, any allotment
/// a <= width achieves full utilization a tasks/step, which is the model
/// behind the paper's Figures 1 and 4: with barriers, ceil(width/a)
/// quantization deflates utilization and distorts A-Greedy's efficiency
/// classification.
std::unique_ptr<dag::Job> constant_parallelism_chains(dag::TaskCount width,
                                                      dag::Steps levels);

/// `low_levels` of width `low` followed by `high_levels` of width `high`.
std::vector<dag::TaskCount> step_profile(dag::TaskCount low,
                                         dag::Steps low_levels,
                                         dag::TaskCount high,
                                         dag::Steps high_levels);

/// Linear ramp from `from` to `to` across `levels` levels.
std::vector<dag::TaskCount> ramp_profile(dag::TaskCount from,
                                         dag::TaskCount to,
                                         dag::Steps levels);

/// `periods` repetitions of (`low_levels` at `low`, `high_levels` at
/// `high`): the square-wave fork-join alternation.
std::vector<dag::TaskCount> square_wave_profile(dag::TaskCount low,
                                                dag::Steps low_levels,
                                                dag::TaskCount high,
                                                dag::Steps high_levels,
                                                int periods);

/// Multiplicative random walk over `levels` levels: each level's width is
/// the previous times a factor drawn log-uniformly from
/// [1/max_step, max_step], clamped to [1, max_width].
std::vector<dag::TaskCount> random_walk_profile(util::Rng& rng,
                                                dag::Steps levels,
                                                dag::TaskCount max_width,
                                                double max_step);

}  // namespace abg::workload
