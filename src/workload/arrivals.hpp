// Release-time (arrival) schedules.
//
// Theorem 5 bounds the makespan for job sets with *arbitrary* release
// times and the mean response time for *batched* releases.  These helpers
// produce the release schedules the experiments use: batched (all at 0),
// evenly staggered, and memoryless (geometric inter-arrival times — the
// discrete analogue of Poisson arrivals).
#pragma once

#include <vector>

#include "dag/job.hpp"
#include "util/rng.hpp"

namespace abg::workload {

/// All jobs released at step 0.
std::vector<dag::Steps> batched_releases(std::size_t jobs);

/// Job i released at i * gap.  Requires gap >= 0 and
/// (jobs - 1) * gap representable in dag::Steps — the last release is
/// checked for overflow and rejected with std::invalid_argument rather
/// than wrapping to a negative step.
std::vector<dag::Steps> staggered_releases(std::size_t jobs, dag::Steps gap);

/// Memoryless arrivals: inter-arrival gaps drawn geometrically with the
/// given mean (in steps), first job at step 0.  Requires mean_gap in
/// [1, 1e12]: gaps are whole steps, so a sub-step mean would silently
/// degenerate to a batched release, and larger means overflow the
/// truncation bound.  (The same rule as open::ArrivalConfig::mean_gap.)
std::vector<dag::Steps> poisson_releases(util::Rng& rng, std::size_t jobs,
                                         double mean_gap);

}  // namespace abg::workload
