#include "workload/profiles.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dag/builders.hpp"
#include "dag/dag_job.hpp"

namespace abg::workload {

namespace {

void check_width(dag::TaskCount width, const char* what) {
  if (width < 1) {
    throw std::invalid_argument(std::string("profiles: ") + what +
                                " must be >= 1");
  }
}

void check_levels(dag::Steps levels, const char* what) {
  if (levels < 0) {
    throw std::invalid_argument(std::string("profiles: ") + what +
                                " must be >= 0");
  }
}

}  // namespace

std::vector<dag::TaskCount> constant_profile(dag::TaskCount width,
                                             dag::Steps levels) {
  check_width(width, "width");
  check_levels(levels, "levels");
  return std::vector<dag::TaskCount>(static_cast<std::size_t>(levels), width);
}

std::unique_ptr<dag::Job> constant_parallelism_chains(dag::TaskCount width,
                                                      dag::Steps levels) {
  check_width(width, "width");
  if (levels < 1) {
    throw std::invalid_argument("profiles: chain levels must be >= 1");
  }
  return std::make_unique<dag::DagJob>(
      dag::builders::fork_join({{width, levels}}));
}

std::vector<dag::TaskCount> step_profile(dag::TaskCount low,
                                         dag::Steps low_levels,
                                         dag::TaskCount high,
                                         dag::Steps high_levels) {
  check_width(low, "low width");
  check_width(high, "high width");
  check_levels(low_levels, "low levels");
  check_levels(high_levels, "high levels");
  std::vector<dag::TaskCount> widths;
  widths.reserve(static_cast<std::size_t>(low_levels + high_levels));
  widths.insert(widths.end(), static_cast<std::size_t>(low_levels), low);
  widths.insert(widths.end(), static_cast<std::size_t>(high_levels), high);
  return widths;
}

std::vector<dag::TaskCount> ramp_profile(dag::TaskCount from,
                                         dag::TaskCount to,
                                         dag::Steps levels) {
  check_width(from, "from width");
  check_width(to, "to width");
  check_levels(levels, "levels");
  std::vector<dag::TaskCount> widths(static_cast<std::size_t>(levels));
  if (levels == 0) {
    return widths;
  }
  if (levels == 1) {
    widths[0] = from;
    return widths;
  }
  for (dag::Steps i = 0; i < levels; ++i) {
    const double t =
        static_cast<double>(i) / static_cast<double>(levels - 1);
    widths[static_cast<std::size_t>(i)] = std::max<dag::TaskCount>(
        1, static_cast<dag::TaskCount>(std::llround(
               static_cast<double>(from) +
               t * static_cast<double>(to - from))));
  }
  return widths;
}

std::vector<dag::TaskCount> square_wave_profile(dag::TaskCount low,
                                                dag::Steps low_levels,
                                                dag::TaskCount high,
                                                dag::Steps high_levels,
                                                int periods) {
  if (periods < 1) {
    throw std::invalid_argument("profiles: periods must be >= 1");
  }
  std::vector<dag::TaskCount> widths;
  const std::vector<dag::TaskCount> one =
      step_profile(low, low_levels, high, high_levels);
  widths.reserve(one.size() * static_cast<std::size_t>(periods));
  for (int p = 0; p < periods; ++p) {
    widths.insert(widths.end(), one.begin(), one.end());
  }
  return widths;
}

std::vector<dag::TaskCount> random_walk_profile(util::Rng& rng,
                                                dag::Steps levels,
                                                dag::TaskCount max_width,
                                                double max_step) {
  check_levels(levels, "levels");
  check_width(max_width, "max width");
  if (!(max_step >= 1.0)) {
    throw std::invalid_argument("profiles: max_step must be >= 1");
  }
  std::vector<dag::TaskCount> widths(static_cast<std::size_t>(levels));
  double current = 1.0;
  for (auto& w : widths) {
    const double factor = rng.log_uniform(1.0 / max_step, max_step);
    current = std::clamp(current * factor, 1.0,
                         static_cast<double>(max_width));
    w = std::max<dag::TaskCount>(
        1, static_cast<dag::TaskCount>(std::llround(current)));
  }
  return widths;
}

}  // namespace abg::workload
