#include "workload/fork_join.hpp"

#include <cmath>
#include <stdexcept>

namespace abg::workload {

std::vector<dag::builders::PhaseSpec> fork_join_phases(
    util::Rng& rng, const ForkJoinSpec& spec) {
  if (!(spec.transition_factor >= 1.0)) {
    throw std::invalid_argument(
        "fork_join_phases: transition factor must be >= 1");
  }
  if (spec.phase_pairs < 1) {
    throw std::invalid_argument("fork_join_phases: phase_pairs must be >= 1");
  }
  if (spec.min_phase_levels < 1 ||
      spec.max_phase_levels < spec.min_phase_levels) {
    throw std::invalid_argument("fork_join_phases: bad phase length range");
  }
  const auto parallel_width = std::max<dag::TaskCount>(
      1, static_cast<dag::TaskCount>(std::llround(spec.transition_factor)));

  auto draw_length = [&]() {
    return static_cast<dag::Steps>(std::llround(
        rng.log_uniform(static_cast<double>(spec.min_phase_levels),
                        static_cast<double>(spec.max_phase_levels))));
  };

  std::vector<dag::builders::PhaseSpec> phases;
  phases.reserve(static_cast<std::size_t>(2 * spec.phase_pairs));
  for (int pair = 0; pair < spec.phase_pairs; ++pair) {
    phases.push_back({1, draw_length()});
    phases.push_back({parallel_width, draw_length()});
  }
  return phases;
}

std::vector<dag::TaskCount> fork_join_widths(util::Rng& rng,
                                             const ForkJoinSpec& spec) {
  return dag::builders::profile_from_phases(fork_join_phases(rng, spec));
}

std::unique_ptr<dag::ProfileJob> make_fork_join_job(util::Rng& rng,
                                                    const ForkJoinSpec& spec) {
  return std::make_unique<dag::ProfileJob>(fork_join_widths(rng, spec));
}

ForkJoinSpec figure5_spec(double transition_factor,
                          dag::Steps quantum_length) {
  if (quantum_length < 2) {
    throw std::invalid_argument("figure5_spec: quantum length must be >= 2");
  }
  ForkJoinSpec spec;
  spec.transition_factor = transition_factor;
  spec.phase_pairs = 6;
  // Phases span several quanta at full allotment so the realized
  // per-quantum parallelism actually dwells at each level — this is what
  // separates the schedulers' steady-state behaviour (ABG settles,
  // A-Greedy keeps oscillating) from the unavoidable transition cost.
  spec.min_phase_levels = 2 * quantum_length;
  spec.max_phase_levels = 16 * quantum_length;
  return spec;
}

}  // namespace abg::workload
