// The paper's experimental workload: data-parallel fork-join jobs.
//
// Section 7.1: jobs alternate between serial and parallel phases; the
// transition factor is controlled by the level of parallelism in the
// parallel phases, and work / critical-path diversity comes from varying
// the length of each phase.  A generated job is a ProfileJob whose level
// widths alternate between 1 (serial) and the target width (parallel),
// with per-phase lengths drawn log-uniformly.  Phase lengths are scaled
// relative to the quantum length so that individual quanta are dominated by
// one phase type — this is what makes the realized per-quantum parallelism
// actually swing by about the target factor.
#pragma once

#include <memory>
#include <vector>

#include "dag/builders.hpp"
#include "dag/profile_job.hpp"
#include "util/rng.hpp"

namespace abg::workload {

/// Parameters of the fork-join job generator.
struct ForkJoinSpec {
  /// Target transition factor: the width of parallel phases (serial phases
  /// have width 1).  Must be >= 1.
  double transition_factor = 10.0;
  /// Number of (serial, parallel) phase pairs.  Must be >= 1.
  int phase_pairs = 6;
  /// Per-phase length range in levels, drawn log-uniformly.  The paper's
  /// setup (L = 1000) maps to lengths of the order of the quantum length.
  dag::Steps min_phase_levels = 500;
  dag::Steps max_phase_levels = 4000;
};

/// The phase list of one random fork-join job: alternating serial
/// (width 1) and parallel (width = transition factor) phases with
/// log-uniform lengths.  Feed to dag::builders::fork_join for the explicit
/// branch-chain DAG or to profile_from_phases for the ProfileJob widths.
std::vector<dag::builders::PhaseSpec> fork_join_phases(
    util::Rng& rng, const ForkJoinSpec& spec);

/// Level widths of one random fork-join job (the barrier-profile view of
/// fork_join_phases).
std::vector<dag::TaskCount> fork_join_widths(util::Rng& rng,
                                             const ForkJoinSpec& spec);

/// A random fork-join ProfileJob.
std::unique_ptr<dag::ProfileJob> make_fork_join_job(util::Rng& rng,
                                                    const ForkJoinSpec& spec);

/// Spec the paper's Figure 5 sweep uses for a given transition factor and
/// quantum length: phase lengths between L/2 and 4L levels.
ForkJoinSpec figure5_spec(double transition_factor,
                          dag::Steps quantum_length);

}  // namespace abg::workload
