#include "workload/arrivals.hpp"

#include <stdexcept>

namespace abg::workload {

std::vector<dag::Steps> batched_releases(std::size_t jobs) {
  return std::vector<dag::Steps>(jobs, 0);
}

std::vector<dag::Steps> staggered_releases(std::size_t jobs,
                                           dag::Steps gap) {
  if (gap < 0) {
    throw std::invalid_argument("staggered_releases: gap must be >= 0");
  }
  std::vector<dag::Steps> releases(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    releases[i] = static_cast<dag::Steps>(i) * gap;
  }
  return releases;
}

std::vector<dag::Steps> poisson_releases(util::Rng& rng, std::size_t jobs,
                                         double mean_gap) {
  if (!(mean_gap > 0.0)) {
    throw std::invalid_argument("poisson_releases: mean gap must be > 0");
  }
  std::vector<dag::Steps> releases(jobs);
  dag::Steps now = 0;
  const double p = 1.0 / (1.0 + mean_gap);
  for (std::size_t i = 0; i < jobs; ++i) {
    releases[i] = now;
    // Geometric inter-arrival with mean (1 - p)/p = mean_gap, truncated
    // far into the tail so a single draw cannot stall the simulation.
    now += rng.geometric(
        p, static_cast<dag::Steps>(mean_gap * 64.0) + 64);
  }
  return releases;
}

}  // namespace abg::workload
