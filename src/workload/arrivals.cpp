#include "workload/arrivals.hpp"

#include <limits>
#include <stdexcept>

namespace abg::workload {

std::vector<dag::Steps> batched_releases(std::size_t jobs) {
  return std::vector<dag::Steps>(jobs, 0);
}

std::vector<dag::Steps> staggered_releases(std::size_t jobs,
                                           dag::Steps gap) {
  if (gap < 0) {
    throw std::invalid_argument("staggered_releases: gap must be >= 0");
  }
  // The last release is (jobs - 1) * gap; reject schedules whose product
  // would wrap dag::Steps into a negative step instead of producing one.
  if (jobs > 1 && gap > 0 &&
      gap > std::numeric_limits<dag::Steps>::max() /
                static_cast<dag::Steps>(jobs - 1)) {
    throw std::invalid_argument(
        "staggered_releases: jobs * gap overflows the step counter");
  }
  std::vector<dag::Steps> releases(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    releases[i] = static_cast<dag::Steps>(i) * gap;
  }
  return releases;
}

std::vector<dag::Steps> poisson_releases(util::Rng& rng, std::size_t jobs,
                                         double mean_gap) {
  // Gaps are whole steps: a mean below one step degenerates to a batched
  // release (every draw truncates to 0) and silently misrepresents the
  // requested arrival rate; means beyond 1e12 overflow the truncation
  // bound below.  Reject both instead of accepting them quietly.
  if (!(mean_gap >= 1.0) || mean_gap > 1e12) {
    throw std::invalid_argument(
        "poisson_releases: mean gap must be in [1, 1e12]");
  }
  std::vector<dag::Steps> releases(jobs);
  dag::Steps now = 0;
  const double p = 1.0 / (1.0 + mean_gap);
  for (std::size_t i = 0; i < jobs; ++i) {
    releases[i] = now;
    // Geometric inter-arrival with mean (1 - p)/p = mean_gap, truncated
    // far into the tail so a single draw cannot stall the simulation.
    now += rng.geometric(
        p, static_cast<dag::Steps>(mean_gap * 64.0) + 64);
  }
  return releases;
}

}  // namespace abg::workload
