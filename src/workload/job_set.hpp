// Job-set generation for the multiprogrammed experiments (Figure 6).
//
// Section 7.2: jobs with different transition factors are grouped into job
// sets of a target system load, where load is the average parallelism of
// the entire job set normalized by the machine size P.  A set is built by
// drawing per-job transition factors log-uniformly from a range and adding
// fork-join jobs until the summed average parallelism reaches load · P
// (respecting the |J| <= P requirement of the analysis).
#pragma once

#include <memory>
#include <vector>

#include "dag/profile_job.hpp"
#include "util/rng.hpp"
#include "workload/fork_join.hpp"

namespace abg::workload {

/// Parameters of the job-set generator.
struct JobSetSpec {
  /// Target load: Σ_j (T1_j / T∞_j) ≈ load · processors.
  double load = 1.0;
  /// Machine size P; also the cap on |J|.
  int processors = 128;
  /// Range of per-job target transition factors, drawn log-uniformly.
  double min_transition_factor = 2.0;
  double max_transition_factor = 100.0;
  /// Per-job fork-join shape (phase lengths kept moderate so a whole set
  /// simulates quickly; the figure-6 harness scales them by quantum
  /// length).
  int phase_pairs = 4;
  dag::Steps min_phase_levels = 250;
  dag::Steps max_phase_levels = 2000;
};

/// One generated job plus the parameters it was generated with.
struct GeneratedJob {
  std::unique_ptr<dag::ProfileJob> job;
  double target_transition_factor = 1.0;
  double average_parallelism = 0.0;
};

/// Generates a job set matching the spec.  Always returns at least one job
/// and at most `spec.processors` jobs.
std::vector<GeneratedJob> make_job_set(util::Rng& rng, const JobSetSpec& spec);

/// Total average parallelism of a generated set divided by P: the realized
/// load.
double realized_load(const std::vector<GeneratedJob>& jobs, int processors);

}  // namespace abg::workload
