// The paper's specific closed loop (Section 4).
//
// Blocks:   controller G(z) = K/(z − 1)   (integral control law, Eq. 1)
//           plant      S(z) = 1/A         (B-Greedy: y(q) = d(q)/A)
// Closed loop (Equation 2):
//           T(z) = G·S / (1 + G·S) = (K/A) / (z − (1 − K/A)),
// a first-order system with single pole p0 = 1 − K/A.  Theorem 1 sets the
// gain K = (1 − r)·A so that p0 = r.
#pragma once

#include "control/transfer_function.hpp"

namespace abg::control {

/// G(z) = K / (z − 1): discrete integrator with gain K.
TransferFunction integral_controller_tf(double gain);

/// S(z) = 1/A: the static plant relating request to normalized output
/// y = d/A.  Requires A > 0.
TransferFunction parallelism_plant_tf(double average_parallelism);

/// The paper's closed loop T(z) for a given controller gain K and constant
/// job parallelism A, built by composing the blocks and closing unity
/// feedback (Equation 2).
TransferFunction abg_closed_loop(double gain, double average_parallelism);

/// The closed-loop pole p0 = 1 − K/A.
double abg_closed_loop_pole(double gain, double average_parallelism);

/// Theorem 1 gain schedule: K = (1 − r)·A for convergence rate r ∈ [0, 1).
double theorem1_gain(double convergence_rate, double average_parallelism);

}  // namespace abg::control
