#include "control/controller.hpp"

#include <stdexcept>

namespace abg::control {

IntegralController::IntegralController(double gain, double initial_output)
    : gain_(gain), output_(initial_output) {}

double IntegralController::update(double error) {
  output_ += gain_ * error;
  return output_;
}

SelfTuningRegulator::SelfTuningRegulator(GainSchedule schedule,
                                         double setpoint,
                                         double initial_output)
    : schedule_(std::move(schedule)),
      setpoint_(setpoint),
      controller_(0.0, initial_output) {
  if (!schedule_) {
    throw std::invalid_argument("SelfTuningRegulator: empty gain schedule");
  }
}

double SelfTuningRegulator::update(double measurement) {
  if (!(measurement > 0.0)) {
    throw std::invalid_argument(
        "SelfTuningRegulator::update: measurement must be positive");
  }
  controller_.set_gain(schedule_(measurement));
  // Normalized output y = u / measurement; error e = setpoint − y.
  const double error = setpoint_ - controller_.output() / measurement;
  return controller_.update(error);
}

}  // namespace abg::control
