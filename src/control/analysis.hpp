// Control-theoretic performance metrics (Section 4's four criteria).
//
// The paper evaluates a request policy by: BIBO stability, steady-state
// error, maximum overshoot, and convergence rate.  These are provided both
// symbolically (from a transfer function) and empirically (from a measured
// request series), so Theorem 1 can be verified against the actual
// scheduler implementation and the instability of A-Greedy (Figures 1 and
// 4(b)) can be quantified.
#pragma once

#include <cstddef>
#include <vector>

#include "control/transfer_function.hpp"

namespace abg::control {

/// BIBO stability of an LTI system: all poles strictly inside the unit
/// circle.
bool is_bibo_stable(const TransferFunction& tf, double tolerance = 1e-9);

/// Steady-state error of the unit-step response: 1 − H(1) by the final
/// value theorem.  Throws if z = 1 is a pole.
double steady_state_error(const TransferFunction& tf);

/// Empirical metrics computed from a measured output series (e.g. the
/// request sequence d(1), d(2), ... divided by the target parallelism A).
struct StepResponseMetrics {
  /// Final value the series settled at (mean of the tail).
  double steady_state = 0.0;
  /// |target − steady_state|.
  double steady_state_error = 0.0;
  /// max over the series of (value − steady_state), clamped at 0: the
  /// maximum overshoot above the settled value.
  double max_overshoot = 0.0;
  /// Largest per-sample contraction ratio |x(k+1) − target|/|x(k) − target|
  /// observed while not yet settled; the paper's convergence rate r.
  double convergence_rate = 0.0;
  /// First index at which the series enters and stays within
  /// `settle_tolerance` of the target; series size when it never settles.
  std::size_t settling_index = 0;
  /// True when the series is bounded (trivially true for finite data) AND
  /// settles within tolerance — the empirical proxy for stability.
  bool settled = false;
  /// Peak-to-peak amplitude over the tail after settling_index (oscillation
  /// measure; 0 for a convergent series, positive for A-Greedy's
  /// steady-state oscillation).
  double residual_oscillation = 0.0;
};

/// Magnitude of the frequency response |H(e^{jω})| at normalized frequency
/// ω ∈ [0, π] (π = one oscillation per quantum — the Nyquist rate of the
/// per-quantum feedback loop).  For ABG's closed loop this shows the
/// low-pass behaviour that makes its requests smooth: unity gain at DC,
/// attenuation (1−r)/(1+r) at the fastest parallelism oscillation.
double magnitude_response(const TransferFunction& tf, double omega);

/// Analyzes a measured series against a target value.  `settle_tolerance`
/// is relative to the target.  `rate_floor` excludes samples whose error is
/// already at most that absolute size from the convergence-rate
/// measurement — for integer-valued request series, per-sample contraction
/// ratios are meaningless once the error is within rounding distance.
/// Requires a non-empty series and target != 0.
StepResponseMetrics analyze_series(const std::vector<double>& series,
                                   double target,
                                   double settle_tolerance = 0.02,
                                   double rate_floor = 0.0);

}  // namespace abg::control
