// Discrete-time (z-domain) rational transfer functions.
//
// Section 4 of the paper analyses ABG as a feedback loop in the z-domain:
// the controller G(z) = K/(z−1), the plant ("B-Greedy") S(z) = 1/A, and the
// closed loop T(z) = G·S / (1 + G·S) = (K/A) / (z − (1 − K/A)).  This module
// provides the small amount of linear-systems machinery needed to state and
// test those results exactly: polynomials over z, rational functions,
// pole computation (Durand–Kerner), and time-domain simulation of the
// difference equation a rational T(z) induces.
#pragma once

#include <complex>
#include <vector>

namespace abg::control {

/// Polynomial in z with real coefficients, stored lowest power first:
/// coeffs[k] multiplies z^k.  The zero polynomial has an empty coefficient
/// vector after normalization.
class Polynomial {
 public:
  Polynomial() = default;

  /// Constructs from coefficients, lowest power first; trailing (highest
  /// power) zeros are trimmed.
  explicit Polynomial(std::vector<double> coeffs);

  /// Degree; -1 for the zero polynomial.
  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }

  bool is_zero() const { return coeffs_.empty(); }

  /// Coefficient of z^k (0 beyond the degree).
  double coeff(std::size_t k) const;

  const std::vector<double>& coeffs() const { return coeffs_; }

  /// Evaluation at a complex point.
  std::complex<double> eval(std::complex<double> z) const;

  /// Evaluation at a real point.
  double eval(double z) const;

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial operator*(double scalar) const;

  bool operator==(const Polynomial& other) const = default;

  /// All complex roots (Durand–Kerner iteration).  Throws for the zero
  /// polynomial; a constant polynomial has no roots.
  std::vector<std::complex<double>> roots() const;

 private:
  void trim();
  std::vector<double> coeffs_;
};

/// Rational transfer function H(z) = num(z) / den(z).
class TransferFunction {
 public:
  /// Requires a non-zero denominator.
  TransferFunction(Polynomial num, Polynomial den);

  const Polynomial& num() const { return num_; }
  const Polynomial& den() const { return den_; }

  /// Poles: roots of the denominator.  (No pole/zero cancellation is
  /// attempted; callers compose loops symbolically and cancellations do not
  /// arise in the first-order systems used here.)
  std::vector<std::complex<double>> poles() const { return den_.roots(); }

  /// Zeros: roots of the numerator.
  std::vector<std::complex<double>> zeros() const;

  /// Evaluation at a complex point; the point must not be a pole.
  std::complex<double> eval(std::complex<double> z) const;

  /// DC gain H(1) — the steady-state amplification of a unit step (final
  /// value theorem).  Throws if z = 1 is a pole.
  double dc_gain() const;

  /// Series composition: this(z) * other(z).
  TransferFunction series(const TransferFunction& other) const;

  /// Unity negative feedback closure: H / (1 + H).
  TransferFunction feedback() const;

  /// Simulates the induced difference equation with zero initial
  /// conditions on the given input sequence, returning the output sequence
  /// of equal length.  Requires deg(num) <= deg(den) (proper system).
  std::vector<double> simulate(const std::vector<double>& input) const;

 private:
  Polynomial num_;
  Polynomial den_;
};

/// Convenience inputs.
std::vector<double> unit_step(std::size_t length, double amplitude = 1.0);
std::vector<double> impulse(std::size_t length, double amplitude = 1.0);

}  // namespace abg::control
