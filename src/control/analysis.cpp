#include "control/analysis.hpp"

#include <complex>
#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abg::control {

bool is_bibo_stable(const TransferFunction& tf, double tolerance) {
  for (const auto& pole : tf.poles()) {
    if (std::abs(pole) >= 1.0 - tolerance) {
      return false;
    }
  }
  return true;
}

double steady_state_error(const TransferFunction& tf) {
  return 1.0 - tf.dc_gain();
}

double magnitude_response(const TransferFunction& tf, double omega) {
  if (omega < 0.0 || omega > 3.14159265358979323846 + 1e-12) {
    throw std::invalid_argument(
        "magnitude_response: omega must lie in [0, pi]");
  }
  const std::complex<double> z = std::polar(1.0, omega);
  return std::abs(tf.eval(z));
}

StepResponseMetrics analyze_series(const std::vector<double>& series,
                                   double target, double settle_tolerance,
                                   double rate_floor) {
  if (series.empty()) {
    throw std::invalid_argument("analyze_series: empty series");
  }
  if (target == 0.0) {
    throw std::invalid_argument("analyze_series: zero target");
  }
  StepResponseMetrics m;

  const double band = std::fabs(target) * settle_tolerance;

  // Settling index: first index from which the series never leaves the
  // tolerance band around the target.
  std::size_t settle = series.size();
  for (std::size_t i = series.size(); i-- > 0;) {
    if (std::fabs(series[i] - target) <= band) {
      settle = i;
    } else {
      break;
    }
  }
  m.settling_index = settle;
  m.settled = settle < series.size();

  // Steady state: mean of the settled tail, or of the last quarter when the
  // series never settles (captures the center of an oscillation).
  const std::size_t tail_start =
      m.settled ? settle : (series.size() * 3) / 4;
  double tail_sum = 0.0;
  double tail_min = series[tail_start];
  double tail_max = series[tail_start];
  for (std::size_t i = tail_start; i < series.size(); ++i) {
    tail_sum += series[i];
    tail_min = std::min(tail_min, series[i]);
    tail_max = std::max(tail_max, series[i]);
  }
  m.steady_state = tail_sum / static_cast<double>(series.size() - tail_start);
  m.steady_state_error = std::fabs(target - m.steady_state);
  m.residual_oscillation = tail_max - tail_min;

  // Overshoot above the settled value, measured over the transient (the
  // prefix up to and including the settling index; for a series that never
  // settles, the whole series is transient).
  double peak = 0.0;
  const std::size_t transient_end = std::min(settle + 1, series.size());
  for (std::size_t i = 0; i < transient_end; ++i) {
    peak = std::max(peak, series[i] - m.steady_state);
  }
  m.max_overshoot = std::max(0.0, peak);

  // Convergence rate: worst contraction of the error toward the target over
  // the pre-settled prefix, ignoring errors already below the floor.
  double rate = 0.0;
  const double rate_band = std::max(band, rate_floor);
  for (std::size_t i = 0; i + 1 < series.size() && i + 1 <= settle; ++i) {
    const double e0 = std::fabs(series[i] - target);
    const double e1 = std::fabs(series[i + 1] - target);
    if (e0 > rate_band) {
      rate = std::max(rate, e1 / e0);
    }
  }
  m.convergence_rate = rate;
  return m;
}

}  // namespace abg::control
