#include "control/transfer_function.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abg::control {

Polynomial::Polynomial(std::vector<double> coeffs)
    : coeffs_(std::move(coeffs)) {
  trim();
}

void Polynomial::trim() {
  while (!coeffs_.empty() && coeffs_.back() == 0.0) {
    coeffs_.pop_back();
  }
}

double Polynomial::coeff(std::size_t k) const {
  return k < coeffs_.size() ? coeffs_[k] : 0.0;
}

std::complex<double> Polynomial::eval(std::complex<double> z) const {
  std::complex<double> acc{0.0, 0.0};
  for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it) {
    acc = acc * z + *it;
  }
  return acc;
}

double Polynomial::eval(double z) const {
  double acc = 0.0;
  for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it) {
    acc = acc * z + *it;
  }
  return acc;
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  std::vector<double> out(std::max(coeffs_.size(), other.coeffs_.size()), 0.0);
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = coeff(k) + other.coeff(k);
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  std::vector<double> out(std::max(coeffs_.size(), other.coeffs_.size()), 0.0);
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = coeff(k) - other.coeff(k);
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  if (is_zero() || other.is_zero()) {
    return Polynomial();
  }
  std::vector<double> out(coeffs_.size() + other.coeffs_.size() - 1, 0.0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    for (std::size_t j = 0; j < other.coeffs_.size(); ++j) {
      out[i + j] += coeffs_[i] * other.coeffs_[j];
    }
  }
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator*(double scalar) const {
  std::vector<double> out = coeffs_;
  for (double& c : out) {
    c *= scalar;
  }
  return Polynomial(std::move(out));
}

std::vector<std::complex<double>> Polynomial::roots() const {
  if (is_zero()) {
    throw std::invalid_argument("Polynomial::roots: zero polynomial");
  }
  const int deg = degree();
  if (deg == 0) {
    return {};
  }
  if (deg == 1) {
    return {std::complex<double>(-coeffs_[0] / coeffs_[1], 0.0)};
  }
  // Durand–Kerner on the monic normalization.
  std::vector<std::complex<double>> monic(coeffs_.begin(), coeffs_.end());
  const std::complex<double> lead = monic.back();
  for (auto& c : monic) {
    c /= lead;
  }
  auto eval_monic = [&](std::complex<double> z) {
    std::complex<double> acc{0.0, 0.0};
    for (auto it = monic.rbegin(); it != monic.rend(); ++it) {
      acc = acc * z + *it;
    }
    return acc;
  };
  std::vector<std::complex<double>> zs(static_cast<std::size_t>(deg));
  const std::complex<double> seed{0.4, 0.9};
  std::complex<double> p{1.0, 0.0};
  for (auto& z : zs) {
    p *= seed;
    z = p;
  }
  for (int iter = 0; iter < 500; ++iter) {
    double shift = 0.0;
    for (std::size_t i = 0; i < zs.size(); ++i) {
      std::complex<double> denom{1.0, 0.0};
      for (std::size_t j = 0; j < zs.size(); ++j) {
        if (j != i) {
          denom *= zs[i] - zs[j];
        }
      }
      const std::complex<double> delta = eval_monic(zs[i]) / denom;
      zs[i] -= delta;
      shift = std::max(shift, std::abs(delta));
    }
    if (shift < 1e-13) {
      break;
    }
  }
  return zs;
}

TransferFunction::TransferFunction(Polynomial num, Polynomial den)
    : num_(std::move(num)), den_(std::move(den)) {
  if (den_.is_zero()) {
    throw std::invalid_argument("TransferFunction: zero denominator");
  }
}

std::vector<std::complex<double>> TransferFunction::zeros() const {
  if (num_.is_zero()) {
    return {};
  }
  return num_.roots();
}

std::complex<double> TransferFunction::eval(std::complex<double> z) const {
  const std::complex<double> d = den_.eval(z);
  if (std::abs(d) < 1e-300) {
    throw std::invalid_argument("TransferFunction::eval: evaluated at a pole");
  }
  return num_.eval(z) / d;
}

double TransferFunction::dc_gain() const {
  return eval(std::complex<double>(1.0, 0.0)).real();
}

TransferFunction TransferFunction::series(const TransferFunction& other) const {
  return TransferFunction(num_ * other.num_, den_ * other.den_);
}

TransferFunction TransferFunction::feedback() const {
  // H/(1+H) with H = num/den  =>  num / (den + num).
  return TransferFunction(num_, den_ + num_);
}

std::vector<double> TransferFunction::simulate(
    const std::vector<double>& input) const {
  const int m = den_.degree();
  const int d = num_.degree();
  if (d > m) {
    throw std::invalid_argument(
        "TransferFunction::simulate: improper (non-causal) system");
  }
  const double am = den_.coeff(static_cast<std::size_t>(m));
  std::vector<double> output(input.size(), 0.0);
  for (std::size_t t = 0; t < input.size(); ++t) {
    double acc = 0.0;
    // Σ b_k u[t-m+k]  for k = 0..d
    for (int k = 0; k <= d; ++k) {
      const std::ptrdiff_t idx =
          static_cast<std::ptrdiff_t>(t) - m + k;
      if (idx >= 0) {
        acc += num_.coeff(static_cast<std::size_t>(k)) *
               input[static_cast<std::size_t>(idx)];
      }
    }
    // − Σ a_k y[t-m+k]  for k = 0..m-1
    for (int k = 0; k < m; ++k) {
      const std::ptrdiff_t idx =
          static_cast<std::ptrdiff_t>(t) - m + k;
      if (idx >= 0) {
        acc -= den_.coeff(static_cast<std::size_t>(k)) *
               output[static_cast<std::size_t>(idx)];
      }
    }
    output[t] = acc / am;
  }
  return output;
}

std::vector<double> unit_step(std::size_t length, double amplitude) {
  return std::vector<double>(length, amplitude);
}

std::vector<double> impulse(std::size_t length, double amplitude) {
  std::vector<double> u(length, 0.0);
  if (!u.empty()) {
    u[0] = amplitude;
  }
  return u;
}

}  // namespace abg::control
