#include "control/closed_loop.hpp"

#include <stdexcept>

namespace abg::control {

TransferFunction integral_controller_tf(double gain) {
  // K / (z - 1): numerator {K}, denominator {-1, 1}.
  return TransferFunction(Polynomial({gain}), Polynomial({-1.0, 1.0}));
}

TransferFunction parallelism_plant_tf(double average_parallelism) {
  if (!(average_parallelism > 0.0)) {
    throw std::invalid_argument(
        "parallelism_plant_tf: average parallelism must be positive");
  }
  return TransferFunction(Polynomial({1.0 / average_parallelism}),
                          Polynomial({1.0}));
}

TransferFunction abg_closed_loop(double gain, double average_parallelism) {
  return integral_controller_tf(gain)
      .series(parallelism_plant_tf(average_parallelism))
      .feedback();
}

double abg_closed_loop_pole(double gain, double average_parallelism) {
  if (!(average_parallelism > 0.0)) {
    throw std::invalid_argument(
        "abg_closed_loop_pole: average parallelism must be positive");
  }
  return 1.0 - gain / average_parallelism;
}

double theorem1_gain(double convergence_rate, double average_parallelism) {
  if (convergence_rate < 0.0 || convergence_rate >= 1.0) {
    throw std::invalid_argument(
        "theorem1_gain: convergence rate must lie in [0, 1)");
  }
  if (!(average_parallelism > 0.0)) {
    throw std::invalid_argument(
        "theorem1_gain: average parallelism must be positive");
  }
  return (1.0 - convergence_rate) * average_parallelism;
}

}  // namespace abg::control
