// Time-domain controllers.
//
// A-Control is a *self-tuning regulator* (Åström & Wittenmark): an integral
// controller whose gain is re-derived every quantum from the latest plant
// measurement via a gain schedule.  This header provides both pieces in
// their general control-theoretic form; sched/a_control.hpp is the
// scheduling-specific instantiation (and a unit test checks the two compute
// identical request sequences).
#pragma once

#include <functional>

namespace abg::control {

/// Discrete integral controller: u(k+1) = u(k) + K · e(k).
class IntegralController {
 public:
  /// `initial_output` is u(0); `gain` is K.
  IntegralController(double gain, double initial_output);

  /// Consumes an error sample and returns the next control output.
  double update(double error);

  double output() const { return output_; }
  double gain() const { return gain_; }
  void set_gain(double gain) { gain_ = gain; }
  void reset(double initial_output) { output_ = initial_output; }

 private:
  double gain_;
  double output_;
};

/// Self-tuning regulator: an integral controller whose gain is recomputed
/// from each measurement by a user-supplied schedule before the update.
///
/// For ABG: measurement = A(q), schedule K = (1 − r)·A, setpoint 1 on the
/// normalized output y = u/A, giving u(q+1) = r·u(q) + (1 − r)·A(q).
class SelfTuningRegulator {
 public:
  using GainSchedule = std::function<double(double measurement)>;

  /// `setpoint` is the reference for the normalized output; ABG uses 1.
  SelfTuningRegulator(GainSchedule schedule, double setpoint,
                      double initial_output);

  /// Feeds one plant measurement (the measured average parallelism) and
  /// returns the next control output (the next processor desire).
  double update(double measurement);

  double output() const { return controller_.output(); }
  void reset(double initial_output) { controller_.reset(initial_output); }

 private:
  GainSchedule schedule_;
  double setpoint_;
  IntegralController controller_;
};

}  // namespace abg::control
