#include "core/a_greedy_scheduler.hpp"

namespace abg::core {

AGreedyScheduler::AGreedyScheduler(sched::AGreedyConfig config)
    : request_(config) {}

std::unique_ptr<sched::RequestPolicy> AGreedyScheduler::make_request_policy()
    const {
  return std::make_unique<sched::AGreedyRequest>(request_.config());
}

}  // namespace abg::core
