// ABG — Adaptive B-Greedy (the paper's contribution).
//
// ABG = B-Greedy task execution (breadth-first greedy, exact per-quantum
// parallelism measurement) + A-Control processor requests (self-tuning
// integral controller with convergence rate r).  This facade bundles the
// two policies with their paper-default parameters (r = 0.2) behind one
// type; see sched/ for the individual pieces and sim/ for the engines that
// drive them.
//
// Quickstart:
//   abg::core::AbgScheduler abg;                       // r = 0.2
//   abg::dag::ProfileJob job{widths};
//   abg::alloc::Unconstrained allocator;
//   auto trace = abg::sim::run_single_job(job, abg.execution(),
//                                         abg.request(), allocator,
//                                         {.processors = 128,
//                                          .quantum_length = 1000});
#pragma once

#include "sched/a_control.hpp"
#include "sched/execution_policy.hpp"

namespace abg::core {

/// Configuration for an ABG scheduler.
struct AbgConfig {
  /// A-Control convergence rate r ∈ [0, 1); the paper's simulations use
  /// 0.2, and r = 0 gives one-step convergence d(q+1) = A(q).
  double convergence_rate = 0.2;
};

/// The assembled ABG task scheduler: execution policy + request policy.
class AbgScheduler {
 public:
  explicit AbgScheduler(AbgConfig config = {});

  /// B-Greedy execution policy (stateless; shareable across jobs).
  const sched::ExecutionPolicy& execution() const { return execution_; }

  /// A-Control request policy for driving a single job.  Feedback state is
  /// per-job: use make_request_policy() for each job of a set.
  sched::RequestPolicy& request() { return request_; }
  const sched::RequestPolicy& request() const { return request_; }

  /// A fresh, independent A-Control instance with this scheduler's
  /// configuration.
  std::unique_ptr<sched::RequestPolicy> make_request_policy() const;

  const AbgConfig& config() const { return config_; }

  static constexpr std::string_view kName = "ABG";

 private:
  AbgConfig config_;
  sched::BGreedyExecution execution_;
  sched::AControlRequest request_;
};

}  // namespace abg::core
