// High-level run drivers: one call from "a job and a scheduler" to a trace
// or job-set result.
//
// A SchedulerSpec names an (execution policy, request policy) pair so
// experiment harnesses can sweep over schedulers uniformly; abg_spec() and
// a_greedy_spec() build the two the paper compares, and static_spec() adds
// a non-adaptive bracket.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "core/a_greedy_scheduler.hpp"
#include "core/abg_scheduler.hpp"
#include "open/streaming_engine.hpp"
#include "sched/execution_policy.hpp"
#include "sched/request_policy.hpp"
#include "sim/quantum_engine.hpp"
#include "sim/simulator.hpp"

namespace abg::core {

/// A named task-scheduler configuration.
struct SchedulerSpec {
  std::string name;
  std::unique_ptr<sched::ExecutionPolicy> execution;
  std::unique_ptr<sched::RequestPolicy> request;

  SchedulerSpec copy() const;
};

/// ABG with the given convergence rate.
SchedulerSpec abg_spec(AbgConfig config = {});

/// A-Greedy with the given utilization/responsiveness.
SchedulerSpec a_greedy_spec(sched::AGreedyConfig config = {});

/// ABG with online convergence-rate selection (tracks the empirical
/// transition factor and keeps r < safety / C_est).
SchedulerSpec abg_auto_spec(sched::AutoRateConfig config = {});

/// Fixed request of `processors` with B-Greedy execution (non-adaptive
/// bracket for ablations).
SchedulerSpec static_spec(int processors);

/// Runs one job to completion under the spec.  When `allocator` is null an
/// Unconstrained allocator is used (the paper's single-job setup: all
/// requests granted up to P).
sim::JobTrace run_single(const SchedulerSpec& spec, dag::Job& job,
                         const sim::SingleJobConfig& config,
                         alloc::Allocator* allocator = nullptr);

/// Runs a job set to completion under the spec.  When `allocator` is null
/// dynamic equi-partitioning is used (the paper's multiprogrammed setup).
/// `config.engine` selects the boundary model: synchronous global quanta
/// (default) or per-job asynchronous quanta.
sim::SimResult run_set(const SchedulerSpec& spec,
                       std::vector<sim::JobSubmission> submissions,
                       const sim::SimConfig& config,
                       alloc::Allocator* allocator = nullptr);

/// Runs an open-system stream to completion under the spec.  When
/// `allocator` is null dynamic equi-partitioning is used; when `factory`
/// is null the default open workload
/// (open::default_open_job_factory(config.quantum_length)) is used.
/// `seed` is the run seed all arrival/job/statistics streams derive from.
open::OpenResult run_open(const SchedulerSpec& spec,
                          const open::OpenConfig& config, std::uint64_t seed,
                          const open::JobFactory& factory = nullptr,
                          alloc::Allocator* allocator = nullptr);

}  // namespace abg::core
