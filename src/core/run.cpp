#include "core/run.hpp"

#include <stdexcept>

#include "alloc/equipartition.hpp"
#include "alloc/unconstrained.hpp"
#include "cluster/cluster_engine.hpp"
#include "sim/async_simulator.hpp"
#include "sim/sharded_engine.hpp"

namespace abg::core {

SchedulerSpec SchedulerSpec::copy() const {
  if (!execution || !request) {
    throw std::logic_error("SchedulerSpec::copy: incomplete spec");
  }
  return SchedulerSpec{name, execution->clone(), request->clone()};
}

SchedulerSpec abg_spec(AbgConfig config) {
  return SchedulerSpec{
      std::string(AbgScheduler::kName),
      std::make_unique<sched::BGreedyExecution>(),
      std::make_unique<sched::AControlRequest>(
          sched::AControlConfig{config.convergence_rate})};
}

SchedulerSpec a_greedy_spec(sched::AGreedyConfig config) {
  return SchedulerSpec{std::string(AGreedyScheduler::kName),
                       std::make_unique<sched::GreedyExecution>(),
                       std::make_unique<sched::AGreedyRequest>(config)};
}

SchedulerSpec abg_auto_spec(sched::AutoRateConfig config) {
  return SchedulerSpec{
      "ABG-auto", std::make_unique<sched::BGreedyExecution>(),
      std::make_unique<sched::AutoRateAControlRequest>(config)};
}

SchedulerSpec static_spec(int processors) {
  return SchedulerSpec{"static-" + std::to_string(processors),
                       std::make_unique<sched::BGreedyExecution>(),
                       std::make_unique<sched::StaticRequest>(processors)};
}

sim::JobTrace run_single(const SchedulerSpec& spec, dag::Job& job,
                         const sim::SingleJobConfig& config,
                         alloc::Allocator* allocator) {
  if (!spec.execution || !spec.request) {
    throw std::invalid_argument("run_single: incomplete scheduler spec");
  }
  alloc::Unconstrained fallback;
  alloc::Allocator& alloc_ref = allocator ? *allocator : fallback;
  // Clone the request policy so the spec itself stays reusable.
  const std::unique_ptr<sched::RequestPolicy> request = spec.request->clone();
  return sim::run_single_job(job, *spec.execution, *request, alloc_ref,
                             config);
}

sim::SimResult run_set(const SchedulerSpec& spec,
                       std::vector<sim::JobSubmission> submissions,
                       const sim::SimConfig& config,
                       alloc::Allocator* allocator) {
  if (!spec.execution || !spec.request) {
    throw std::invalid_argument("run_set: incomplete scheduler spec");
  }
  alloc::EquiPartition fallback;
  alloc::Allocator& alloc_ref = allocator ? *allocator : fallback;
  if (config.cluster.machines != 0) {
    // Cluster mode: the cluster driver validates the rest of the config
    // (sync-only, no faults, no quantum-length policy, no hier groups).
    return cluster::simulate_job_set_cluster(std::move(submissions),
                                             *spec.execution, *spec.request,
                                             alloc_ref, config);
  }
  if (config.hier.groups != 0) {
    // Hierarchical allocation: the sharded engine validates the rest of
    // the config (sync-only, no faults, no quantum-length policy).
    return sim::simulate_job_set_sharded(std::move(submissions),
                                         *spec.execution, *spec.request,
                                         alloc_ref, config);
  }
  if (config.engine == sim::EngineKind::kAsync) {
    return sim::simulate_job_set_async(std::move(submissions), *spec.execution,
                                       *spec.request, alloc_ref, config);
  }
  return sim::simulate_job_set(std::move(submissions), *spec.execution,
                               *spec.request, alloc_ref, config);
}

open::OpenResult run_open(const SchedulerSpec& spec,
                          const open::OpenConfig& config, std::uint64_t seed,
                          const open::JobFactory& factory,
                          alloc::Allocator* allocator) {
  if (!spec.execution || !spec.request) {
    throw std::invalid_argument("run_open: incomplete scheduler spec");
  }
  alloc::EquiPartition fallback;
  alloc::Allocator& alloc_ref = allocator ? *allocator : fallback;
  if (factory) {
    return open::run_stream(*spec.execution, *spec.request, factory,
                            alloc_ref, config, seed);
  }
  return open::run_stream(*spec.execution, *spec.request,
                          open::default_open_job_factory(
                              config.quantum_length),
                          alloc_ref, config, seed);
}

}  // namespace abg::core
