// A-Greedy (Agrawal, He, Hsu, Leiserson, PPoPP'06) — the baseline scheduler
// the paper compares ABG against.
//
// A-Greedy = plain greedy task execution + multiplicative-increase
// multiplicative-decrease requests.  The parameter settings follow the
// paper (which keeps those of He et al. [12]): utilization δ = 0.8,
// responsiveness ρ = 2.
#pragma once

#include "sched/a_greedy_request.hpp"
#include "sched/execution_policy.hpp"

namespace abg::core {

/// The assembled A-Greedy task scheduler.
class AGreedyScheduler {
 public:
  explicit AGreedyScheduler(sched::AGreedyConfig config = {});

  /// Plain greedy execution policy (stateless; shareable across jobs).
  const sched::ExecutionPolicy& execution() const { return execution_; }

  /// The MIMD request policy for driving a single job.  Feedback state is
  /// per-job: use make_request_policy() for each job of a set.
  sched::RequestPolicy& request() { return request_; }
  const sched::RequestPolicy& request() const { return request_; }

  /// A fresh, independent request-policy instance.
  std::unique_ptr<sched::RequestPolicy> make_request_policy() const;

  const sched::AGreedyConfig& config() const { return request_.config(); }

  static constexpr std::string_view kName = "A-Greedy";

 private:
  sched::GreedyExecution execution_;
  sched::AGreedyRequest request_;
};

}  // namespace abg::core
