#include "core/abg_scheduler.hpp"

namespace abg::core {

AbgScheduler::AbgScheduler(AbgConfig config)
    : config_(config),
      request_(sched::AControlConfig{config.convergence_rate}) {}

std::unique_ptr<sched::RequestPolicy> AbgScheduler::make_request_policy()
    const {
  return std::make_unique<sched::AControlRequest>(
      sched::AControlConfig{config_.convergence_rate});
}

}  // namespace abg::core
