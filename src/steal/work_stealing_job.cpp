#include "steal/work_stealing_job.hpp"

#include <stdexcept>

namespace abg::steal {

WorkStealingJob::WorkStealingJob(dag::DagStructure structure,
                                 std::uint64_t seed)
    : WorkStealingJob(dag::build_topology(std::move(structure)), seed) {}

WorkStealingJob::WorkStealingJob(std::shared_ptr<const dag::Topology> topo,
                                 std::uint64_t seed)
    : topo_(std::move(topo)), seed_(seed), rng_(seed) {
  initialize_runtime_state();
}

void WorkStealingJob::initialize_runtime_state() {
  const std::size_t n = topo_->structure.node_count();
  pending_parents_ = topo_->initial_parents;
  workers_.assign(1, Worker{});
  ready_ = 0;
  completed_ = 0;
  level_progress_ = 0.0;
  counters_ = StealCounters{};
  // The job starts on a single processor: all sources in worker 0's deque.
  for (std::size_t i = 0; i < n; ++i) {
    if (pending_parents_[i] == 0) {
      workers_[0].deque.push_back(static_cast<dag::NodeId>(i));
      ++ready_;
    }
  }
}

bool WorkStealingJob::finished() const { return completed_ == total_work(); }

void WorkStealingJob::resize_workers(std::size_t procs) {
  if (procs == workers_.size()) {
    return;
  }
  if (procs > workers_.size()) {
    workers_.resize(procs);
    return;
  }
  // Allotment shrank: mug the orphaned deques (and in-flight tasks) onto
  // the surviving workers round-robin.
  for (std::size_t i = procs; i < workers_.size(); ++i) {
    Worker& orphan = workers_[i];
    const std::size_t target = procs > 0 ? i % procs : 0;
    if (!orphan.deque.empty() || orphan.current >= 0) {
      ++counters_.muggings;
    }
    if (orphan.current >= 0) {
      workers_[target].deque.push_back(
          static_cast<dag::NodeId>(orphan.current));
      orphan.current = -1;
    }
    while (!orphan.deque.empty()) {
      workers_[target].deque.push_back(orphan.deque.front());
      orphan.deque.pop_front();
    }
  }
  workers_.resize(procs);
}

void WorkStealingJob::complete_task(dag::NodeId id, std::size_t worker) {
  ++completed_;
  --ready_;
  level_progress_ +=
      1.0 / static_cast<double>(topo_->level_size[topo_->level[id]]);
  for (const dag::NodeId child : topo_->structure.children[id]) {
    if (--pending_parents_[child] == 0) {
      workers_[worker].deque.push_back(child);
      ++ready_;
    }
  }
}

dag::TaskCount WorkStealingJob::step(int procs, dag::PickOrder /*order*/) {
  if (procs < 0) {
    throw std::invalid_argument(
        "WorkStealingJob::step: negative processor count");
  }
  if (finished() || procs == 0) {
    return 0;
  }
  resize_workers(static_cast<std::size_t>(procs));

  // Phase 1: every worker either executes a task or attempts one steal.
  // `executing[i]` records the task worker i completes this step.
  std::vector<std::int64_t> executing(workers_.size(), -1);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = workers_[i];
    if (w.current < 0 && !w.deque.empty()) {
      // Owner pops from the bottom.
      w.current = w.deque.back();
      w.deque.pop_back();
    }
    if (w.current >= 0) {
      executing[i] = w.current;
      w.current = -1;
      continue;
    }
    // Out of work: one steal attempt at a uniformly random victim; a
    // stolen task begins executing on the next step.
    ++counters_.steal_attempts;
    if (workers_.size() > 1) {
      auto victim = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(workers_.size()) - 2));
      if (victim >= i) {
        ++victim;  // skip self
      }
      Worker& v = workers_[victim];
      if (!v.deque.empty()) {
        // Thief takes from the top.
        w.current = v.deque.front();
        v.deque.pop_front();
        ++counters_.successful_steals;
        continue;
      }
    }
    ++counters_.idle_worker_steps;
  }

  // Phase 2: completions take effect at the end of the step; enabled
  // children land in the completing worker's deque.
  dag::TaskCount done = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (executing[i] >= 0) {
      complete_task(static_cast<dag::NodeId>(executing[i]), i);
      ++done;
    }
  }
  return done;
}

dag::TaskCount WorkStealingJob::total_work() const {
  return static_cast<dag::TaskCount>(topo_->structure.node_count());
}

dag::Steps WorkStealingJob::critical_path() const {
  return topo_->critical_path;
}

std::unique_ptr<dag::Job> WorkStealingJob::fresh_clone() const {
  return std::unique_ptr<dag::Job>(new WorkStealingJob(topo_, seed_));
}

}  // namespace abg::steal
