// Distributed work-stealing execution (the substrate behind A-Steal and
// ABP, Section 8's related work).
//
// Instead of a centralized ready queue, each allotted processor owns a
// deque of ready tasks: owners push/pop at the bottom; an out-of-work
// processor spends a time step attempting to steal from the top of a
// uniformly random victim's deque (Arora-Blumofe-Plaxton discipline) and
// can execute the stolen task from the next step.  Steal attempts and idle
// steps consume allotted processor cycles without completing work — that
// is exactly the waste A-Steal's feedback tries to control.
//
// WorkStealingJob implements the Job interface, so the whole two-level
// machinery (quantum engine, allocators, request policies) drives it
// unchanged; `step(procs, ...)` executes one unit step with `procs`
// workers.  When the allotment shrinks between steps, the orphaned deques
// are "mugged": their tasks are appended to the surviving workers' deques.
// Steal-victim selection is driven by a per-job seeded RNG, so runs are
// exactly reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "dag/job.hpp"
#include "dag/topology.hpp"
#include "util/rng.hpp"

namespace abg::steal {

/// Per-run statistics specific to work stealing.
struct StealCounters {
  /// Steps some worker spent attempting a steal.
  std::int64_t steal_attempts = 0;
  /// Attempts that obtained a task.
  std::int64_t successful_steals = 0;
  /// Worker-steps with an empty deque and a failed or skipped steal.
  std::int64_t idle_worker_steps = 0;
  /// Deque migrations caused by allotment shrinkage.
  std::int64_t muggings = 0;
};

/// A malleable job executed by randomized work stealing.
class WorkStealingJob final : public dag::Job {
 public:
  /// Validates the DAG (via the same topology machinery as DagJob) and
  /// seeds the steal-victim RNG.
  WorkStealingJob(dag::DagStructure structure, std::uint64_t seed);

  bool finished() const override;
  /// One unit step with `procs` workers.  The PickOrder is ignored: task
  /// order is dictated by the deque discipline.
  dag::TaskCount step(int procs, dag::PickOrder order) override;
  dag::TaskCount total_work() const override;
  dag::Steps critical_path() const override;
  dag::TaskCount completed_work() const override { return completed_; }
  double level_progress() const override { return level_progress_; }
  dag::TaskCount ready_count() const override { return ready_; }
  std::unique_ptr<dag::Job> fresh_clone() const override;

  const StealCounters& counters() const { return counters_; }

 private:
  struct Worker {
    std::deque<dag::NodeId> deque;
    /// Task acquired (stolen or popped) that executes this step; -1 none.
    std::int64_t current = -1;
  };

  WorkStealingJob(std::shared_ptr<const dag::Topology> topo,
                  std::uint64_t seed);
  void initialize_runtime_state();
  void resize_workers(std::size_t procs);
  void complete_task(dag::NodeId id, std::size_t worker);

  std::shared_ptr<const dag::Topology> topo_;
  std::uint64_t seed_;
  util::Rng rng_;
  std::vector<Worker> workers_;
  std::vector<std::uint32_t> pending_parents_;
  dag::TaskCount ready_ = 0;
  dag::TaskCount completed_ = 0;
  double level_progress_ = 0.0;
  StealCounters counters_;
};

}  // namespace abg::steal
