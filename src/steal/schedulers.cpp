#include "steal/schedulers.hpp"

namespace abg::steal {

core::SchedulerSpec a_steal_spec(sched::AGreedyConfig config) {
  return core::SchedulerSpec{"A-Steal",
                             std::make_unique<WorkStealingExecution>(),
                             std::make_unique<AStealRequest>(config)};
}

core::SchedulerSpec abp_spec(int processors) {
  return core::SchedulerSpec{"ABP",
                             std::make_unique<WorkStealingExecution>(),
                             std::make_unique<sched::StaticRequest>(
                                 processors)};
}

}  // namespace abg::steal
