// The work-stealing schedulers of the paper's related work (Section 8):
//
//   * A-Steal (Agrawal, He, Leiserson) — distributed work stealing WITH
//     parallelism feedback: the same multiplicative-increase
//     multiplicative-decrease desire rule as A-Greedy, driven by the
//     quantum's usage (completed work; steal attempts and idle worker
//     steps burn allotted cycles without contributing usage).
//   * ABP (Arora, Blumofe, Plaxton) — work stealing WITHOUT feedback: the
//     job simply requests the whole machine every quantum.  The empirical
//     study in Agrawal et al. [2] found A-Steal far more efficient than
//     ABP in multiprogrammed settings; the baselines bench reproduces that
//     comparison alongside ABG.
#pragma once

#include "core/run.hpp"
#include "sched/a_greedy_request.hpp"
#include "sched/execution_policy.hpp"

namespace abg::steal {

/// Execution policy tag for work-stealing jobs.  The pick order is decided
/// by the deque discipline inside WorkStealingJob; the value passed through
/// is ignored.
class WorkStealingExecution final : public sched::ExecutionPolicy {
 public:
  dag::PickOrder order() const override { return dag::PickOrder::kFifo; }
  std::string_view name() const override { return "work-stealing"; }
  std::unique_ptr<sched::ExecutionPolicy> clone() const override {
    return std::make_unique<WorkStealingExecution>();
  }
};

/// A-Steal's desire rule: A-Greedy's MIMD rule under its own name.
class AStealRequest final : public sched::AGreedyRequest {
 public:
  explicit AStealRequest(sched::AGreedyConfig config = {})
      : AGreedyRequest(config) {}
  std::string_view name() const override { return "a-steal"; }
  std::unique_ptr<sched::RequestPolicy> clone() const override {
    return std::make_unique<AStealRequest>(config());
  }
};

/// A-Steal: work-stealing execution + MIMD feedback (δ = 0.8, ρ = 2 by
/// default, the settings of [2]).
core::SchedulerSpec a_steal_spec(sched::AGreedyConfig config = {});

/// ABP: work-stealing execution, no feedback — always requests the whole
/// machine.  Requires processors >= 1.
core::SchedulerSpec abp_spec(int processors);

}  // namespace abg::steal
