#include "sched/execution_policy.hpp"

#include <stdexcept>

namespace abg::sched {

QuantumStats ExecutionPolicy::run_quantum(dag::Job& job, std::int64_t index,
                                          int request, int allotment,
                                          dag::Steps quantum_length) const {
  if (allotment < 0 || quantum_length <= 0) {
    throw std::invalid_argument(
        "ExecutionPolicy::run_quantum: invalid allotment or quantum length");
  }
  const dag::QuantumExecution exec =
      job.run_quantum(allotment, quantum_length, order());
  QuantumStats stats;
  stats.index = index;
  stats.request = request;
  stats.allotment = allotment;
  stats.length = quantum_length;
  stats.steps_used = exec.steps;
  stats.work = exec.work;
  stats.cpl = exec.cpl;
  stats.finished = exec.finished;
  // Full quantum: work on every step of the quantum.  A job that finished
  // before the last step, ran an idle step, or had a zero allotment is
  // non-full; finishing exactly on the quantum's final step still counts.
  stats.full = allotment > 0 && exec.idle_steps == 0 &&
               exec.steps == quantum_length;
  return stats;
}

}  // namespace abg::sched
