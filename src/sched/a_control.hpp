// A-Control: the paper's adaptive (self-tuning) integral controller for
// processor requests (Section 3).
//
// The controller applies the integral control law
//     d(q+1) = d(q) + K(q+1) · e(q),      e(q) = r_ref − d(q)/A(q),
// with reference r_ref = 1 and the gain schedule of Theorem 1,
//     K(q+1) = (1 − r) · A(q),
// which collapses to the recurrence (Equation 3)
//     d(q+1) = r · d(q) + (1 − r) · A(q),          d(1) = 1,
// where r ∈ [0, 1) is the user-configurable convergence rate.  r = 0 gives
// one-step convergence: d(q+1) = A(q).
//
// When a quantum produced no measurable progress (zero allotment), A(q) is
// undefined and the request is left unchanged.
#pragma once

#include "sched/request_policy.hpp"

namespace abg::sched {

/// Configuration for A-Control.
struct AControlConfig {
  /// Convergence rate r ∈ [0, 1): the closed-loop pole.  The paper's
  /// simulations use 0.2.
  double convergence_rate = 0.2;
};

/// The A-Control request policy.
class AControlRequest final : public RequestPolicy {
 public:
  explicit AControlRequest(AControlConfig config = {});

  int first_request() const override { return 1; }
  int next_request(const QuantumStats& completed) override;
  void reset() override;
  std::string_view name() const override { return "a-control"; }
  std::unique_ptr<RequestPolicy> clone() const override;

  /// The real-valued internal desire d(q) before integer rounding.
  double desire() const { return desire_; }

  /// Controller gain K(q+1) that the self-tuning rule would apply after the
  /// most recent measurement (for control-theoretic inspection).
  double current_gain() const { return gain_; }

  const AControlConfig& config() const { return config_; }

 private:
  AControlConfig config_;
  double desire_ = 1.0;
  double gain_ = 0.0;
};

/// Configuration for the self-tuning convergence rate.
struct AutoRateConfig {
  /// Upper bound on the rate regardless of the workload (the paper finds
  /// behaviour degrades past ~0.6).
  double max_rate = 0.5;
  /// Safety factor: r is kept at safety / C_est, strictly inside the
  /// r < 1/C_L region Lemma 2 and Theorems 4-5 require.  Must be in
  /// (0, 1).
  double safety = 0.5;
};

/// A-Control with online convergence-rate selection.
///
/// The paper assumes r is "chosen based on some historical
/// characterization of the workload" so that r < 1/C_L holds.  This
/// variant builds that characterization while scheduling: it tracks the
/// empirical transition factor of the measured parallelism series
/// (seeded with A(0) = 1, exactly the Section 5.2 definition) and applies
/// Equation 3 with r = min(max_rate, safety / C_est) each quantum.  On a
/// stable workload the rate rises toward max_rate (smooth requests); on a
/// wildly swinging workload it falls toward 0 (one-step tracking), which
/// is also the regime where large r is unsafe.
class AutoRateAControlRequest final : public RequestPolicy {
 public:
  explicit AutoRateAControlRequest(AutoRateConfig config = {});

  int first_request() const override { return 1; }
  int next_request(const QuantumStats& completed) override;
  void reset() override;
  std::string_view name() const override { return "a-control-auto"; }
  std::unique_ptr<RequestPolicy> clone() const override;

  /// The rate currently in force.
  double current_rate() const { return rate_; }

  /// The running transition-factor estimate C_est.
  double estimated_transition_factor() const { return transition_; }

  double desire() const { return desire_; }
  const AutoRateConfig& config() const { return config_; }

 private:
  AutoRateConfig config_;
  double desire_ = 1.0;
  double previous_parallelism_ = 1.0;  // A(0) = 1
  double transition_ = 1.0;
  double rate_ = 0.0;
};

/// Configuration for the measurement-filtered controller.
struct FilteredAControlConfig {
  /// Convergence rate r of the underlying A-Control law.
  double convergence_rate = 0.2;
  /// EWMA smoothing factor α ∈ (0, 1]: the filtered measurement is
  /// Â(q) = α·A(q) + (1−α)·Â(q−1).  α = 1 disables filtering.
  double smoothing = 0.5;
};

/// A-Control behind a first-order measurement filter.
///
/// On irregular DAGs the per-quantum parallelism measurement A(q) is
/// noisy: quanta straddling phase boundaries report parallelism that
/// neither phase exhibits.  Feeding an exponentially-weighted moving
/// average of the measurements into Equation 3 trades one extra quantum of
/// reaction lag for immunity to single-quantum spikes.  (An engineering
/// extension — the paper's controller consumes the raw measurement.)
class FilteredAControlRequest final : public RequestPolicy {
 public:
  explicit FilteredAControlRequest(FilteredAControlConfig config = {});

  int first_request() const override { return 1; }
  int next_request(const QuantumStats& completed) override;
  void reset() override;
  std::string_view name() const override { return "a-control-filtered"; }
  std::unique_ptr<RequestPolicy> clone() const override;

  double desire() const { return desire_; }
  /// The filtered measurement Â after the latest update; 0 before any
  /// measurement.
  double filtered_parallelism() const { return filtered_; }
  const FilteredAControlConfig& config() const { return config_; }

 private:
  FilteredAControlConfig config_;
  double desire_ = 1.0;
  double filtered_ = 0.0;
};

}  // namespace abg::sched
