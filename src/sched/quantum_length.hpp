// Quantum-length policies (the paper's Section 9 future work: "dynamically
// adjusting the quantum length ... to achieve better system wide
// adaptivity").
//
// The quantum length L trades reallocation overhead against reactivity:
// long quanta amortize the feedback loop but hold stale allotments through
// parallelism changes (waste), short quanta track the job closely but
// re-run the convergence transient constantly.  AdaptiveQuantumLength
// lengthens L geometrically while the measured parallelism is stable and
// resets it to the minimum when the parallelism jumps — an additive
// realization of the paper's suggestion, benchmarked in
// bench/ablation_policies.
#pragma once

#include <memory>
#include <string_view>

#include "sched/quantum_stats.hpp"

namespace abg::sched {

/// Strategy choosing the next scheduling quantum's length.
class QuantumLengthPolicy {
 public:
  virtual ~QuantumLengthPolicy() = default;

  /// Length of the job's first quantum.
  virtual dag::Steps initial_length() const = 0;

  /// Length of the next quantum given the just-completed quantum's
  /// statistics.
  virtual dag::Steps next_length(const QuantumStats& completed) = 0;

  /// Resets internal state for a fresh job.
  virtual void reset() = 0;

  virtual std::string_view name() const = 0;
  virtual std::unique_ptr<QuantumLengthPolicy> clone() const = 0;
};

/// The paper's baseline: a constant quantum length.
class FixedQuantumLength final : public QuantumLengthPolicy {
 public:
  /// Requires length >= 1.
  explicit FixedQuantumLength(dag::Steps length);

  dag::Steps initial_length() const override { return length_; }
  dag::Steps next_length(const QuantumStats& completed) override;
  void reset() override {}
  std::string_view name() const override { return "fixed"; }
  std::unique_ptr<QuantumLengthPolicy> clone() const override;

 private:
  dag::Steps length_;
};

/// Stability-driven quantum lengthening.
struct AdaptiveQuantumConfig {
  /// Length of the first quantum and the floor after a parallelism jump.
  dag::Steps min_length = 250;
  /// Cap on the geometric growth.
  dag::Steps max_length = 4000;
  /// Relative parallelism change below which a quantum counts as stable.
  double stability_tolerance = 0.2;
  /// Consecutive stable quanta required before the length doubles.
  int stable_quanta_to_grow = 2;
};

class AdaptiveQuantumLength final : public QuantumLengthPolicy {
 public:
  explicit AdaptiveQuantumLength(AdaptiveQuantumConfig config = {});

  dag::Steps initial_length() const override { return config_.min_length; }
  dag::Steps next_length(const QuantumStats& completed) override;
  void reset() override;
  std::string_view name() const override { return "adaptive"; }
  std::unique_ptr<QuantumLengthPolicy> clone() const override;

  const AdaptiveQuantumConfig& config() const { return config_; }

 private:
  AdaptiveQuantumConfig config_;
  dag::Steps current_;
  double previous_parallelism_ = 0.0;
  int stable_streak_ = 0;
};

}  // namespace abg::sched
