// A-Greedy's request rule (Agrawal, He, Hsu, Leiserson, PPoPP 2006) — the
// baseline the paper compares against.
//
// A-Greedy classifies each quantum by its utilization and satisfaction:
//   * inefficient — usage T1(q) < δ · a(q) · L  (utilization below the
//     threshold δ);
//   * efficient and deprived — utilization ≥ δ and a(q) < d(q);
//   * efficient and satisfied — utilization ≥ δ and a(q) = d(q);
// and then applies multiplicative-increase multiplicative-decrease:
//   inefficient            →  d(q+1) = d(q) / ρ
//   efficient ∧ satisfied  →  d(q+1) = d(q) · ρ
//   efficient ∧ deprived   →  d(q+1) = d(q)
// (an efficient deprived quantum gives no evidence the job could use more
// than the still-ungranted request, so the desire holds; an efficient
// satisfied quantum means everything requested was productively used, so
// the desire grows).
// with responsiveness ρ > 1 and utilization threshold δ ∈ (0, 1).
// The paper keeps the settings of He et al. [12]: δ = 0.8, ρ = 2.
//
// This rule is the source of the request instability in Figures 1 and 4(b):
// on a job with constant parallelism A the desire ping-pongs around A
// instead of settling.
#pragma once

#include "sched/request_policy.hpp"

namespace abg::sched {

/// Configuration for the A-Greedy request rule.
struct AGreedyConfig {
  /// Utilization threshold δ ∈ (0, 1).
  double utilization = 0.8;
  /// Responsiveness (multiplicative factor) ρ > 1.
  double responsiveness = 2.0;
};

/// The A-Greedy multiplicative-increase multiplicative-decrease policy.
/// (Non-final: A-Steal reuses the identical rule under its own name, fed
/// by work-stealing usage measurements.)
class AGreedyRequest : public RequestPolicy {
 public:
  explicit AGreedyRequest(AGreedyConfig config = {});

  int first_request() const override { return 1; }
  int next_request(const QuantumStats& completed) override;
  void reset() override;
  std::string_view name() const override { return "a-greedy"; }
  std::unique_ptr<RequestPolicy> clone() const override;

  /// The real-valued internal desire before integer rounding.
  double desire() const { return desire_; }

  const AGreedyConfig& config() const { return config_; }

 private:
  AGreedyConfig config_;
  double desire_ = 1.0;
};

}  // namespace abg::sched
