// Task execution policies: how ready tasks are picked within each step.
//
// B-Greedy (Section 2) is greedy scheduling with breadth-first
// (lowest-level-first) priority; the plain greedy scheduler that A-Greedy
// builds on picks ready tasks in arbitrary order (we use FIFO).  Both
// execute up to a(q) ready tasks per unit step.  The policy also performs
// the per-quantum measurement: it runs the job for one quantum and returns
// the QuantumStats the request policy feeds on.
#pragma once

#include <memory>
#include <string_view>

#include "dag/job.hpp"
#include "sched/quantum_stats.hpp"

namespace abg::sched {

/// Strategy for executing a job within scheduling quanta.
class ExecutionPolicy {
 public:
  virtual ~ExecutionPolicy() = default;

  /// The pick order this policy imposes on ready tasks.
  virtual dag::PickOrder order() const = 0;

  /// Human-readable policy name.
  virtual std::string_view name() const = 0;

  virtual std::unique_ptr<ExecutionPolicy> clone() const = 0;

  /// Executes one quantum of `job` with the given allotment and quantum
  /// length, returning the measured statistics.  `index` and `request` are
  /// recorded into the stats for the request policy's benefit.
  QuantumStats run_quantum(dag::Job& job, std::int64_t index, int request,
                           int allotment, dag::Steps quantum_length) const;
};

/// Plain greedy execution (arbitrary / FIFO pick order).
class GreedyExecution final : public ExecutionPolicy {
 public:
  dag::PickOrder order() const override { return dag::PickOrder::kFifo; }
  std::string_view name() const override { return "greedy"; }
  std::unique_ptr<ExecutionPolicy> clone() const override {
    return std::make_unique<GreedyExecution>();
  }
};

/// B-Greedy: greedy execution with breadth-first (lowest level first)
/// priority, enabling exact quantum-parallelism measurement.
class BGreedyExecution final : public ExecutionPolicy {
 public:
  dag::PickOrder order() const override {
    return dag::PickOrder::kBreadthFirst;
  }
  std::string_view name() const override { return "b-greedy"; }
  std::unique_ptr<ExecutionPolicy> clone() const override {
    return std::make_unique<BGreedyExecution>();
  }
};

}  // namespace abg::sched
