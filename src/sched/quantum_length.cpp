#include "sched/quantum_length.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abg::sched {

FixedQuantumLength::FixedQuantumLength(dag::Steps length) : length_(length) {
  if (length < 1) {
    throw std::invalid_argument("FixedQuantumLength: length must be >= 1");
  }
}

dag::Steps FixedQuantumLength::next_length(const QuantumStats& /*completed*/) {
  return length_;
}

std::unique_ptr<QuantumLengthPolicy> FixedQuantumLength::clone() const {
  return std::make_unique<FixedQuantumLength>(length_);
}

AdaptiveQuantumLength::AdaptiveQuantumLength(AdaptiveQuantumConfig config)
    : config_(config), current_(config.min_length) {
  if (config_.min_length < 1 || config_.max_length < config_.min_length) {
    throw std::invalid_argument(
        "AdaptiveQuantumLength: requires 1 <= min_length <= max_length");
  }
  if (!(config_.stability_tolerance > 0.0)) {
    throw std::invalid_argument(
        "AdaptiveQuantumLength: stability tolerance must be positive");
  }
  if (config_.stable_quanta_to_grow < 1) {
    throw std::invalid_argument(
        "AdaptiveQuantumLength: stable_quanta_to_grow must be >= 1");
  }
}

dag::Steps AdaptiveQuantumLength::next_length(const QuantumStats& completed) {
  const double parallelism = completed.average_parallelism();
  if (parallelism <= 0.0) {
    // No measurement: keep the current length.
    return current_;
  }
  const bool stable =
      previous_parallelism_ > 0.0 &&
      std::fabs(parallelism - previous_parallelism_) <=
          config_.stability_tolerance * previous_parallelism_;
  previous_parallelism_ = parallelism;
  if (stable) {
    if (++stable_streak_ >= config_.stable_quanta_to_grow) {
      current_ = std::min(config_.max_length, current_ * 2);
      stable_streak_ = 0;
    }
  } else {
    // Parallelism moved: fall back to the reactive floor.
    current_ = config_.min_length;
    stable_streak_ = 0;
  }
  return current_;
}

void AdaptiveQuantumLength::reset() {
  current_ = config_.min_length;
  previous_parallelism_ = 0.0;
  stable_streak_ = 0;
}

std::unique_ptr<QuantumLengthPolicy> AdaptiveQuantumLength::clone() const {
  return std::make_unique<AdaptiveQuantumLength>(config_);
}

}  // namespace abg::sched
