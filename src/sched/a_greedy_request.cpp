#include "sched/a_greedy_request.hpp"

#include <algorithm>
#include <stdexcept>

namespace abg::sched {

AGreedyRequest::AGreedyRequest(AGreedyConfig config) : config_(config) {
  if (config_.utilization <= 0.0 || config_.utilization >= 1.0) {
    throw std::invalid_argument(
        "AGreedyRequest: utilization threshold must lie in (0, 1)");
  }
  if (config_.responsiveness <= 1.0) {
    throw std::invalid_argument(
        "AGreedyRequest: responsiveness must be > 1");
  }
}

int AGreedyRequest::next_request(const QuantumStats& completed) {
  const double usage = static_cast<double>(completed.work);
  const double capacity = static_cast<double>(completed.allotment) *
                          static_cast<double>(completed.length);
  const bool inefficient = usage < config_.utilization * capacity;
  if (inefficient) {
    desire_ = std::max(1.0, desire_ / config_.responsiveness);
  } else if (!completed.deprived()) {
    desire_ *= config_.responsiveness;
  }
  // Efficient but deprived: desire unchanged.
  return round_request(desire_);
}

void AGreedyRequest::reset() { desire_ = 1.0; }

std::unique_ptr<RequestPolicy> AGreedyRequest::clone() const {
  return std::make_unique<AGreedyRequest>(config_);
}

}  // namespace abg::sched
