// Processor-request policies: the parallelism feedback.
//
// Between quanta the task scheduler reports a processor request d(q+1) to
// the OS allocator.  The paper's contribution is A-Control (an adaptive
// integral controller, sched/a_control.hpp); the baseline is A-Greedy's
// multiplicative-increase multiplicative-decrease rule
// (sched/a_greedy_request.hpp).  StaticRequest brackets them from below
// (no adaptivity at all).
#pragma once

#include <memory>
#include <string_view>

#include "sched/quantum_stats.hpp"

namespace abg::sched {

/// Strategy for computing the next quantum's processor request.
class RequestPolicy {
 public:
  virtual ~RequestPolicy() = default;

  /// Request for the job's first quantum, d(1).
  virtual int first_request() const { return 1; }

  /// Request for the next quantum, given the just-finished quantum's
  /// measured statistics.  Called once per completed quantum, in order.
  virtual int next_request(const QuantumStats& completed) = 0;

  /// Resets internal state so the policy can drive a fresh job.
  virtual void reset() = 0;

  /// Human-readable policy name.
  virtual std::string_view name() const = 0;

  virtual std::unique_ptr<RequestPolicy> clone() const = 0;
};

/// Constant request (a non-adaptive lower bracket; equivalent to running
/// the job on a fixed allotment).
class StaticRequest final : public RequestPolicy {
 public:
  /// Requests `processors` every quantum.  Requires processors >= 1.
  explicit StaticRequest(int processors);

  int first_request() const override { return processors_; }
  int next_request(const QuantumStats& completed) override;
  void reset() override {}
  std::string_view name() const override { return "static"; }
  std::unique_ptr<RequestPolicy> clone() const override;

 private:
  int processors_;
};

/// Rounds a real-valued request to an integer processor count >= 1.
int round_request(double desire);

}  // namespace abg::sched
