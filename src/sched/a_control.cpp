#include "sched/a_control.hpp"

#include <algorithm>
#include <stdexcept>

namespace abg::sched {

AControlRequest::AControlRequest(AControlConfig config) : config_(config) {
  if (config_.convergence_rate < 0.0 || config_.convergence_rate >= 1.0) {
    throw std::invalid_argument(
        "AControlRequest: convergence rate must lie in [0, 1)");
  }
}

int AControlRequest::next_request(const QuantumStats& completed) {
  const double parallelism = completed.average_parallelism();
  if (parallelism <= 0.0) {
    // No progress measured (e.g. zero allotment): no new information, so
    // hold the previous desire.
    return round_request(desire_);
  }
  const double r = config_.convergence_rate;
  // Self-tuning gain K(q+1) = (1 - r) A(q); with e(q) = 1 - d(q)/A(q) the
  // integral law d+K·e reduces to d(q+1) = r d(q) + (1-r) A(q).
  gain_ = (1.0 - r) * parallelism;
  desire_ = r * desire_ + (1.0 - r) * parallelism;
  return round_request(desire_);
}

void AControlRequest::reset() {
  desire_ = 1.0;
  gain_ = 0.0;
}

std::unique_ptr<RequestPolicy> AControlRequest::clone() const {
  return std::make_unique<AControlRequest>(config_);
}

AutoRateAControlRequest::AutoRateAControlRequest(AutoRateConfig config)
    : config_(config) {
  if (config_.max_rate < 0.0 || config_.max_rate >= 1.0) {
    throw std::invalid_argument(
        "AutoRateAControlRequest: max_rate must lie in [0, 1)");
  }
  if (!(config_.safety > 0.0) || config_.safety >= 1.0) {
    throw std::invalid_argument(
        "AutoRateAControlRequest: safety must lie in (0, 1)");
  }
}

int AutoRateAControlRequest::next_request(const QuantumStats& completed) {
  const double parallelism = completed.average_parallelism();
  if (parallelism <= 0.0) {
    return round_request(desire_);
  }
  // Update the empirical transition factor (Section 5.2, with A(0) = 1).
  if (completed.full) {
    const double up = parallelism / previous_parallelism_;
    const double down = previous_parallelism_ / parallelism;
    transition_ = std::max({transition_, up, down});
    previous_parallelism_ = parallelism;
  }
  rate_ = std::min(config_.max_rate, config_.safety / transition_);
  desire_ = rate_ * desire_ + (1.0 - rate_) * parallelism;
  return round_request(desire_);
}

void AutoRateAControlRequest::reset() {
  desire_ = 1.0;
  previous_parallelism_ = 1.0;
  transition_ = 1.0;
  rate_ = 0.0;
}

std::unique_ptr<RequestPolicy> AutoRateAControlRequest::clone() const {
  return std::make_unique<AutoRateAControlRequest>(config_);
}

FilteredAControlRequest::FilteredAControlRequest(
    FilteredAControlConfig config)
    : config_(config) {
  if (config_.convergence_rate < 0.0 || config_.convergence_rate >= 1.0) {
    throw std::invalid_argument(
        "FilteredAControlRequest: convergence rate must lie in [0, 1)");
  }
  if (!(config_.smoothing > 0.0) || config_.smoothing > 1.0) {
    throw std::invalid_argument(
        "FilteredAControlRequest: smoothing must lie in (0, 1]");
  }
}

int FilteredAControlRequest::next_request(const QuantumStats& completed) {
  const double parallelism = completed.average_parallelism();
  if (parallelism <= 0.0) {
    return round_request(desire_);
  }
  filtered_ = filtered_ > 0.0
                  ? config_.smoothing * parallelism +
                        (1.0 - config_.smoothing) * filtered_
                  : parallelism;  // first measurement seeds the filter
  const double r = config_.convergence_rate;
  desire_ = r * desire_ + (1.0 - r) * filtered_;
  return round_request(desire_);
}

void FilteredAControlRequest::reset() {
  desire_ = 1.0;
  filtered_ = 0.0;
}

std::unique_ptr<RequestPolicy> FilteredAControlRequest::clone() const {
  return std::make_unique<FilteredAControlRequest>(config_);
}

}  // namespace abg::sched
