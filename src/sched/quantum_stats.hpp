// Per-quantum statistics.
//
// Everything the feedback algorithms and the analysis see about a quantum:
// the request d(q), the allotment a(q), the measured quantum work T1(q) and
// quantum critical-path length T∞(q), and quantities derived from them —
// the average parallelism A(q) = T1(q)/T∞(q) and the efficiencies
// α(q) = T1(q)/(a(q)·L) and β(q) = T∞(q)/L of Section 5.1.
#pragma once

#include <cstdint>

#include "dag/job.hpp"

namespace abg::sched {

/// Measured statistics of one scheduling quantum of one job.
struct QuantumStats {
  /// 1-based quantum index q (per job).
  std::int64_t index = 0;
  /// Global simulation step at which this quantum began.
  dag::Steps start_step = 0;
  /// Processor request d(q) sent to the OS allocator for this quantum.
  int request = 0;
  /// Allotment a(q) = min{d(q), p(q)} granted by the allocator.
  int allotment = 0;
  /// Processor availability p(q) for this job: its allotment plus whatever
  /// the allocator left unassigned this quantum.  Trim analysis averages
  /// this over non-trimmed quanta.
  int available = 0;
  /// Quantum length L in unit steps.
  dag::Steps length = 0;
  /// Steps the job actually consumed (< length only in its final quantum).
  dag::Steps steps_used = 0;
  /// Quantum work T1(q): tasks completed.
  dag::TaskCount work = 0;
  /// Quantum critical-path length T∞(q): fractional levels advanced.
  double cpl = 0.0;
  /// True when the job completed during this quantum.
  bool finished = false;
  /// Full quantum: work was done on every step (Section 5.1).  Only a job's
  /// last quantum can be non-full when each job always has >= 1 processor.
  bool full = false;

  /// Quantum average parallelism A(q) = T1(q)/T∞(q); 0 when no progress.
  double average_parallelism() const {
    return cpl > 0.0 ? static_cast<double>(work) / cpl : 0.0;
  }

  /// Quantum work efficiency α(q) = T1(q)/(a(q)·L); 0 for a zero allotment.
  double work_efficiency() const {
    const double denom =
        static_cast<double>(allotment) * static_cast<double>(length);
    return denom > 0.0 ? static_cast<double>(work) / denom : 0.0;
  }

  /// Quantum critical-path efficiency β(q) = T∞(q)/L.
  double cpl_efficiency() const {
    return length > 0 ? cpl / static_cast<double>(length) : 0.0;
  }

  /// Deprived: the allocator granted fewer processors than requested.
  bool deprived() const { return allotment < request; }

  /// Processor cycles allotted but not spent executing tasks in this
  /// quantum.  The allotment is held for the entire quantum (processors are
  /// reassigned only at quantum boundaries), so a job finishing early still
  /// wastes the remainder.
  dag::TaskCount waste() const {
    return static_cast<dag::TaskCount>(allotment) *
               static_cast<dag::TaskCount>(length) -
           work;
  }
};

}  // namespace abg::sched
