#include "sched/request_policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace abg::sched {

StaticRequest::StaticRequest(int processors) : processors_(processors) {
  if (processors < 1) {
    throw std::invalid_argument("StaticRequest: processors must be >= 1");
  }
}

int StaticRequest::next_request(const QuantumStats& /*completed*/) {
  return processors_;
}

std::unique_ptr<RequestPolicy> StaticRequest::clone() const {
  return std::make_unique<StaticRequest>(processors_);
}

int round_request(double desire) {
  if (!std::isfinite(desire)) {
    throw std::invalid_argument("round_request: non-finite desire");
  }
  const double clamped =
      std::clamp(desire, 1.0,
                 static_cast<double>(std::numeric_limits<int>::max() / 2));
  return static_cast<int>(std::llround(clamped));
}

}  // namespace abg::sched
