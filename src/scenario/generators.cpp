#include "scenario/generators.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "dag/profile_job.hpp"
#include "workload/arrivals.hpp"
#include "workload/profiles.hpp"

namespace abg::scenario {

namespace {

/// Hard cap on a single generated job's profile length.  Scenario files
/// are external input; a typoed work target must fail loudly instead of
/// materializing a multi-gigabyte width vector.
constexpr std::size_t kMaxLevelsPerJob = std::size_t{1} << 24;

void check_profile_size(std::size_t levels, const ScenarioSpec& spec) {
  if (levels > kMaxLevelsPerJob) {
    throw std::invalid_argument(
        "scenario '" + spec.name + "': a generated job spans " +
        std::to_string(levels) + " levels; the cap is " +
        std::to_string(kMaxLevelsPerJob) +
        " (reduce the work / levels parameters)");
  }
}

/// Scales a sampled level count by the arrival's work multiplier,
/// clamping to at least one level.
std::int64_t scale_levels(std::int64_t levels, double work_scale) {
  if (work_scale == 1.0) {
    return std::max<std::int64_t>(1, levels);
  }
  const double scaled = static_cast<double>(levels) * work_scale;
  if (scaled > 1e15) {
    throw std::invalid_argument(
        "scenario: work_scale-adjusted level count overflows");
  }
  return std::max<std::int64_t>(1, std::llround(scaled));
}

const ClassSpec& pick_class(const std::vector<ClassSpec>& classes,
                            util::Rng& rng) {
  if (classes.size() == 1) {
    return classes.front();
  }
  double total = 0.0;
  for (const ClassSpec& klass : classes) {
    total += klass.weight;
  }
  double draw = rng.uniform_real(0.0, total);
  for (const ClassSpec& klass : classes) {
    if (draw < klass.weight) {
      return klass;
    }
    draw -= klass.weight;
  }
  return classes.back();
}

void append_levels(std::vector<dag::TaskCount>& widths, std::int64_t width,
                   std::int64_t levels, const ScenarioSpec& spec) {
  check_profile_size(widths.size() + static_cast<std::size_t>(levels), spec);
  widths.insert(widths.end(), static_cast<std::size_t>(levels),
                static_cast<dag::TaskCount>(width));
}

/// The sublinear-speedup staircase: widths halve geometrically from
/// max_width down to 1, widest first, with level counts ~ w^(alpha - 2)
/// normalized so the total work matches the class's target.  With
/// alpha < 1 the work mass concentrates at narrow widths, so adding
/// processors helps sublinearly — the s(k) ~ k^alpha regime heSRPT-style
/// allocation is designed for.
std::vector<dag::TaskCount> sublinear_profile(const ScenarioSpec& spec,
                                              const ClassSpec& klass,
                                              util::Rng& rng, int processors,
                                              double work_scale) {
  std::int64_t max_width = klass.max_width.sample(rng);
  if (max_width == 0) {
    max_width = processors;
  }
  max_width = std::max<std::int64_t>(1, max_width);
  const std::int64_t work =
      scale_levels(klass.work.sample(rng), work_scale);

  std::vector<std::int64_t> stair;
  for (std::int64_t w = max_width; w >= 1; w /= 2) {
    stair.push_back(w);
    if (w == 1) {
      break;
    }
  }
  double denominator = 0.0;
  for (const std::int64_t w : stair) {
    denominator += std::pow(static_cast<double>(w), klass.alpha - 1.0);
  }
  const double scale = static_cast<double>(work) / denominator;

  std::vector<dag::TaskCount> widths;
  for (const std::int64_t w : stair) {
    const std::int64_t levels = std::max<std::int64_t>(
        1, std::llround(scale *
                        std::pow(static_cast<double>(w), klass.alpha - 2.0)));
    append_levels(widths, w, levels, spec);
  }
  return widths;
}

}  // namespace

std::vector<dag::TaskCount> sample_profile(const ScenarioSpec& spec,
                                           util::Rng& rng, int processors,
                                           dag::Steps quantum,
                                           double work_scale,
                                           std::size_t job_index,
                                           std::string* class_label) {
  if (processors < 1 || quantum < 1) {
    throw std::invalid_argument(
        "scenario: processors and quantum must be >= 1");
  }
  // Default label: the generator family (a sublinear draw refines it).
  if (class_label != nullptr) {
    *class_label = to_string(spec.generator);
  }
  std::vector<dag::TaskCount> widths;
  switch (spec.generator) {
    case GeneratorKind::kMultiphase: {
      for (const PhaseSpec& phase : spec.phases) {
        const std::int64_t width =
            std::max<std::int64_t>(1, phase.width.sample(rng));
        const std::int64_t levels =
            scale_levels(phase.levels.sample(rng), work_scale);
        append_levels(widths, width, levels, spec);
      }
      break;
    }
    case GeneratorKind::kSublinear: {
      const ClassSpec& klass = pick_class(spec.classes, rng);
      if (class_label != nullptr) {
        *class_label =
            "class" + std::to_string(&klass - spec.classes.data());
      }
      widths = sublinear_profile(spec, klass, rng, processors, work_scale);
      break;
    }
    case GeneratorKind::kMapReduce: {
      const std::int64_t maps =
          std::max<std::int64_t>(1, spec.maps.sample(rng));
      const std::int64_t map_levels =
          scale_levels(spec.map_levels.sample(rng), work_scale);
      const std::int64_t shuffle_levels =
          scale_levels(spec.shuffle_levels.sample(rng), work_scale);
      const std::int64_t reduces =
          std::max<std::int64_t>(1, spec.reduces.sample(rng));
      const std::int64_t reduce_levels =
          scale_levels(spec.reduce_levels.sample(rng), work_scale);
      append_levels(widths, maps, map_levels, spec);
      append_levels(widths, 1, shuffle_levels, spec);
      append_levels(widths, reduces, reduce_levels, spec);
      break;
    }
    case GeneratorKind::kOscillator: {
      const std::int64_t low =
          std::max<std::int64_t>(1, spec.osc_low.sample(rng));
      std::int64_t high = spec.osc_high.sample(rng);
      if (high == 0) {
        high = processors;
      }
      high = std::max<std::int64_t>(1, high);
      std::int64_t half = spec.half_period.sample(rng);
      if (half == 0) {
        // The adversarial default: phases flip exactly once per quantum,
        // so a quantum-granularity scheduler's allotment is always one
        // phase stale — the C_L-bound worst case.
        half = quantum;
      }
      const std::int64_t reps = std::max<std::int64_t>(
          1, std::llround(static_cast<double>(spec.periods.sample(rng)) *
                          work_scale));
      check_profile_size(static_cast<std::size_t>(2 * half) *
                             static_cast<std::size_t>(reps),
                         spec);
      widths = workload::square_wave_profile(
          static_cast<dag::TaskCount>(low), half,
          static_cast<dag::TaskCount>(high), half, static_cast<int>(reps));
      break;
    }
    case GeneratorKind::kExplicit: {
      const ExplicitJob& job =
          spec.explicit_jobs[job_index % spec.explicit_jobs.size()];
      for (const ExplicitPhase& phase : job.phases) {
        append_levels(widths, phase.width,
                      scale_levels(phase.levels, work_scale), spec);
      }
      break;
    }
  }
  return widths;
}

std::vector<sim::JobSubmission> generate_jobs(const ScenarioSpec& spec,
                                              util::Rng& rng, int processors,
                                              dag::Steps quantum) {
  spec.validate();
  const std::size_t count = spec.generator == GeneratorKind::kExplicit
                                ? spec.explicit_jobs.size()
                                : static_cast<std::size_t>(spec.jobs);
  std::vector<sim::JobSubmission> subs;
  subs.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    sim::JobSubmission sub;
    // The class label rides along as the submission name (unused by the
    // engines; the cluster's class-affinity router keys on it).
    sub.job = std::make_unique<dag::ProfileJob>(
        sample_profile(spec, rng, processors, quantum, 1.0, j, &sub.name));
    subs.push_back(std::move(sub));
  }
  // Releases are assigned after every job is generated, so the job shapes
  // are independent of the release schedule (the runner's own rule for
  // its release axis).
  if (spec.generator == GeneratorKind::kExplicit) {
    for (std::size_t j = 0; j < count; ++j) {
      subs[j].release_step = spec.explicit_jobs[j].release;
    }
  } else if (spec.release.schedule == ReleaseSchedule::kStaggered) {
    const std::vector<dag::Steps> releases = workload::staggered_releases(
        count, static_cast<dag::Steps>(spec.release.gap));
    for (std::size_t j = 0; j < count; ++j) {
      subs[j].release_step = releases[j];
    }
  } else if (spec.release.schedule == ReleaseSchedule::kPoisson) {
    const std::vector<dag::Steps> releases =
        workload::poisson_releases(rng, count, spec.release.gap);
    for (std::size_t j = 0; j < count; ++j) {
      subs[j].release_step = releases[j];
    }
  }
  return subs;
}

open::JobFactory make_open_factory(const ScenarioSpec& spec, int processors,
                                   dag::Steps quantum) {
  spec.validate();
  const auto shared = std::make_shared<const ScenarioSpec>(spec);
  return [shared, processors, quantum](
             util::Rng& rng,
             const open::Arrival& arrival) -> std::unique_ptr<dag::Job> {
    std::size_t index = 0;
    if (shared->generator == GeneratorKind::kExplicit &&
        shared->explicit_jobs.size() > 1) {
      index = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(shared->explicit_jobs.size()) - 1));
    }
    return std::make_unique<dag::ProfileJob>(sample_profile(
        *shared, rng, processors, quantum, arrival.work_scale, index));
  };
}

}  // namespace abg::scenario
