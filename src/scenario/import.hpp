// JSONL job-trace import/export for the scenario library.
//
// The interchange format is one JSON object per line:
//
//   {"kind":"abg-jobs-trace","name":"...","processors":P,"quantum":L}
//   {"release":0,"phases":[[32,400],[1,200],[8,400]]}
//   {"release":500,"phases":[[4,1000]]}
//
// The first line is an optional header carrying the scenario name and the
// machine the trace was captured under; every other line is one job as a
// release step plus its run-length-encoded level-width profile.  Import
// validates (widths/levels >= 1, releases >= 0), normalizes (jobs sorted
// by release, adjacent equal-width phases merged) and produces an
// `explicit` ScenarioSpec that replays the trace exactly; export runs a
// scenario's generator under an explicit Rng and writes the resulting
// jobs, so export -> import round-trips to the byte-identical workload.
#pragma once

#include <iosfwd>
#include <string>

#include "scenario/spec.hpp"
#include "util/rng.hpp"

namespace abg::scenario {

/// Parses a JSONL job trace into an explicit scenario.  `default_name`
/// applies when the trace has no header (or the header has no name).
/// Throws std::invalid_argument naming the offending line.
ScenarioSpec import_trace(std::istream& in, const std::string& default_name);

/// import_trace from a file; throws std::runtime_error when unreadable.
ScenarioSpec import_trace_file(const std::string& path,
                               const std::string& default_name);

/// Materializes `spec` under `rng` (resolving machine-relative defaults
/// against `processors` / `quantum`) and writes the generated jobs as a
/// JSONL trace, header first.
void export_trace(std::ostream& out, const ScenarioSpec& spec,
                  util::Rng& rng, int processors, dag::Steps quantum);

}  // namespace abg::scenario
