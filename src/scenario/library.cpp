#include "scenario/library.hpp"

#include <map>
#include <memory>
#include <mutex>

namespace abg::scenario {

namespace {

std::mutex& cache_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, std::unique_ptr<const ScenarioSpec>>& cache() {
  static std::map<std::string, std::unique_ptr<const ScenarioSpec>> entries;
  return entries;
}

}  // namespace

const ScenarioSpec& load_cached(const std::string& path) {
  {
    const std::lock_guard<std::mutex> lock(cache_mutex());
    const auto found = cache().find(path);
    if (found != cache().end()) {
      return *found->second;
    }
  }
  // Parse outside the lock so a slow or failing load never serializes
  // unrelated lookups; a racing duplicate parse is benign (first insert
  // wins, the copies are identical).
  auto loaded = std::make_unique<const ScenarioSpec>(
      ScenarioSpec::load_file(path));
  const std::lock_guard<std::mutex> lock(cache_mutex());
  const auto [it, inserted] = cache().emplace(path, std::move(loaded));
  return *it->second;
}

void clear_cache() {
  const std::lock_guard<std::mutex> lock(cache_mutex());
  cache().clear();
}

}  // namespace abg::scenario
