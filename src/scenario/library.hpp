// Process-wide scenario cache.
//
// A sweep grid references the same scenario file from hundreds of cells
// executing on a thread pool; parsing the file once and sharing the
// immutable spec keeps the per-run cost at a map lookup.  Entries are
// keyed by the path string as given (no canonicalization — two spellings
// of one path are two entries, which is only a cache miss, never an
// error).
#pragma once

#include <string>

#include "scenario/spec.hpp"

namespace abg::scenario {

/// Loads `path` through the process-wide cache (thread-safe).  The
/// returned reference stays valid for the process lifetime.  Throws what
/// ScenarioSpec::load_file throws on the first load; failed loads are not
/// cached, so a corrected file can be retried.
const ScenarioSpec& load_cached(const std::string& path);

/// Drops every cached entry (tests that rewrite scenario files).
void clear_cache();

}  // namespace abg::scenario
