// Compiles a ScenarioSpec into runnable workloads.
//
// Closed runs get a sim::JobSubmission vector (jobs plus release steps);
// open runs get an open::JobFactory that materializes one job per arrival
// and scales its size by the arrival's work_scale.  Both paths draw only
// from the Rng they are handed, so a scenario run is a pure function of
// (scenario file, seed) — the library's standard determinism contract.
#pragma once

#include <string>
#include <vector>

#include "open/streaming_engine.hpp"
#include "scenario/spec.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace abg::scenario {

/// Generates the scenario's closed job set.  `processors` and `quantum`
/// resolve the spec's machine-relative defaults (oscillator high = P,
/// half-period = L, sublinear max_width = P); pass the values the run
/// will simulate under.  Throws std::invalid_argument when the spec is
/// structurally invalid.
std::vector<sim::JobSubmission> generate_jobs(const ScenarioSpec& spec,
                                              util::Rng& rng, int processors,
                                              dag::Steps quantum);

/// Wraps the scenario's per-job generator as an open-system job factory:
/// every arrival draws one job from the generator (release schedules and
/// the `jobs` count do not apply — the arrival process owns timing).  An
/// explicit scenario draws uniformly from its literal job list.
open::JobFactory make_open_factory(const ScenarioSpec& spec, int processors,
                                   dag::Steps quantum);

/// The level-width profile of one generated job (exposed for the
/// trace exporter and tests).  `work_scale` multiplies the job's size
/// (level counts / work targets) the way open arrivals do; pass 1.0 for
/// closed runs.  kExplicit ignores the rng and reads `job_index` modulo
/// the literal list; other generators ignore `job_index`.  When
/// `class_label` is non-null it receives the job's class name — the
/// generator name, or "class<i>" for the sublinear class actually drawn —
/// which generate_jobs stores as the submission name for class-affinity
/// cluster routing.
std::vector<dag::TaskCount> sample_profile(const ScenarioSpec& spec,
                                           util::Rng& rng, int processors,
                                           dag::Steps quantum,
                                           double work_scale,
                                           std::size_t job_index,
                                           std::string* class_label = nullptr);

}  // namespace abg::scenario
