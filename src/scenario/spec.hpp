// Declarative workload descriptions ("scenarios") parsed from JSON.
//
// A scenario file turns a workload into *data*: it names a generator
// family, its parameters, and optional machine / release / arrival
// defaults, and the library compiles it into the same sim::JobSubmission
// vectors (closed runs) or open::JobFactory (streaming runs) the C++
// workload generators produce.  Adding a workload to a sweep or bench is
// then a new JSON file under scenarios/, not a code change.
//
// Generator families (ISSUE/PAPERS-named):
//   * multiphase  — jobs that alternate phases of fixed per-phase
//                   parallelism (Vaze, "Scheduling for Multi-Phase
//                   Parallelizable Jobs"): each phase gives a width range
//                   and a length range sampled per job.
//   * sublinear   — job classes with sublinear speedup s(k) ~ k^alpha
//                   (Berg et al., heSRPT): approximated by a geometric
//                   staircase profile, widest phases first, with level
//                   counts ~ w^(alpha-2) so most work sits at narrow
//                   widths when alpha < 1.
//   * mapreduce   — map/shuffle/reduce DAG phases: a wide map phase, a
//                   serial shuffle barrier, and a reduce phase.
//   * oscillator  — adversarial parallelism square waves near the C_L
//                   bound: half-periods tied to the quantum length so the
//                   profile transitions exactly when a quantum-based
//                   scheduler has committed its allotment.
//   * explicit    — literal per-job (release, [[width, levels], ...])
//                   lists; the importer's output format.  Consumes no
//                   randomness, so imported traces replay exactly.
//
// Determinism: sampling draws only from the Rng handed to the generator,
// and a Range whose bounds coincide consumes no randomness, so a fully
// pinned scenario is identical at every seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/job.hpp"
#include "open/arrival_process.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace abg::scenario {

/// Inclusive integer range sampled per job.  Parses from a JSON scalar
/// (`5` -> [5, 5]) or a two-element array (`[2, 8]`).  A degenerate range
/// consumes no randomness when sampled.
struct Range {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  static Range fixed(std::int64_t value) { return Range{value, value}; }
  bool is_fixed() const { return lo == hi; }
  std::int64_t sample(util::Rng& rng) const;

  static Range from_json(const util::Json& value, const std::string& where);
  util::Json to_json() const;
};

/// Generator families.
enum class GeneratorKind {
  kMultiphase,
  kSublinear,
  kMapReduce,
  kOscillator,
  kExplicit,
};

/// Canonical lower-case names ("multiphase", "sublinear", "mapreduce",
/// "oscillator", "explicit").
std::string to_string(GeneratorKind kind);
GeneratorKind generator_kind_from_name(const std::string& name);

/// One phase of a multiphase job: `levels` levels of width `width`.
struct PhaseSpec {
  Range width = Range::fixed(1);
  Range levels = Range::fixed(1);
};

/// One sublinear-speedup job class.
struct ClassSpec {
  /// Speedup exponent alpha in (0, 1]: s(k) ~ k^alpha.
  double alpha = 0.5;
  /// Total work target of a job of this class (tasks).
  Range work = Range::fixed(100000);
  /// Maximum parallelism (top of the staircase); 0 = machine size P.
  Range max_width = Range::fixed(0);
  /// Relative probability of drawing this class.
  double weight = 1.0;
};

/// One literal phase of an explicit job.
struct ExplicitPhase {
  std::int64_t width = 1;
  std::int64_t levels = 1;
};

/// One literal job of an explicit scenario.
struct ExplicitJob {
  dag::Steps release = 0;
  std::vector<ExplicitPhase> phases;
};

/// Release-time schedule for closed runs (mirrors exp::ReleaseKind without
/// depending on exp; the scenario layer sits below the experiment layer).
enum class ReleaseSchedule { kBatched, kStaggered, kPoisson };

std::string to_string(ReleaseSchedule schedule);
ReleaseSchedule release_schedule_from_name(const std::string& name);

/// Optional machine defaults a scenario may carry.  0 = unspecified (the
/// consumer's --processors / --quantum or its defaults apply).
struct MachineDefaults {
  int processors = 0;
  dag::Steps quantum = 0;
};

/// Release schedule of the generated jobs (closed runs; ignored when the
/// consumer engages the open axis).
struct ReleaseSpec {
  ReleaseSchedule schedule = ReleaseSchedule::kBatched;
  /// kStaggered: fixed gap; kPoisson: mean gap (steps).
  double gap = 0.0;
};

/// Optional open-system defaults: when `kind != kNone` the scenario asks
/// to be streamed through the open engine with this arrival process
/// (consumers may override via their own --arrival axis).
struct ArrivalSpec {
  open::ArrivalKind kind = open::ArrivalKind::kNone;
  /// Arrivals to stream (0 = consumer default).
  std::int64_t jobs_total = 0;
  /// Offered load the arrival gap is calibrated to (0 = consumer default).
  double load = 0.0;
};

/// Optional cluster defaults: when `machines > 0` the scenario asks to be
/// routed across a multi-machine cluster (cluster/cluster_engine.hpp).
/// Consumers may override the count/router via their own cluster axes;
/// the heterogeneous `shapes` apply whenever the effective machine count
/// matches their length.
struct ClusterDefaults {
  int machines = 0;
  /// Router policy name ("" = consumer default, least-loaded).
  std::string router;
  /// Migration epoch in quanta (0 = migration disabled).
  dag::Steps migration_period = 0;
  /// Per-machine shapes (empty = uniform machines of the consumer's P).
  std::vector<sim::ClusterMachine> shapes;
};

/// A parsed scenario file.
struct ScenarioSpec {
  std::string name;
  std::string description;
  GeneratorKind generator = GeneratorKind::kMultiphase;
  /// Number of jobs to generate (closed runs; kExplicit uses the literal
  /// job list instead).
  int jobs = 1;
  MachineDefaults machine;
  ReleaseSpec release;
  ArrivalSpec arrival;
  ClusterDefaults cluster;

  // Generator payloads (only the active generator's member is used).
  std::vector<PhaseSpec> phases;        // kMultiphase
  std::vector<ClassSpec> classes;       // kSublinear
  Range maps = Range::fixed(32);        // kMapReduce
  Range map_levels = Range::fixed(400);
  Range shuffle_levels = Range::fixed(200);
  Range reduces = Range::fixed(8);
  Range reduce_levels = Range::fixed(400);
  Range osc_low = Range::fixed(1);      // kOscillator
  Range osc_high = Range::fixed(0);     // 0 = machine size P
  Range half_period = Range::fixed(0);  // steps; 0 = quantum length L
  Range periods = Range::fixed(8);
  std::vector<ExplicitJob> explicit_jobs;  // kExplicit

  /// Parses and validates a scenario document; throws
  /// std::invalid_argument naming the offending field.
  static ScenarioSpec from_json(const util::Json& doc);

  /// Serializes in the exact shape from_json accepts (round-trip exact).
  util::Json to_json() const;

  /// Loads from a file; throws std::runtime_error when unreadable and
  /// std::invalid_argument (prefixed with the path) on malformed content.
  static ScenarioSpec load_file(const std::string& path);

  /// Atomically writes to_json() to `path`.
  void save_file(const std::string& path) const;

  /// Structural validation (called by from_json; public so
  /// programmatically built specs can self-check).  Throws
  /// std::invalid_argument on the first violation.
  void validate() const;
};

}  // namespace abg::scenario
