#include "scenario/spec.hpp"

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "util/atomic_file.hpp"

namespace abg::scenario {

namespace {

[[noreturn]] void bad(const std::string& where, const std::string& what) {
  throw std::invalid_argument("scenario: " + where + ": " + what);
}

/// Strict-key discipline: scenario files are hand-written, so a typoed
/// key must be an error, not a silently ignored member (the same rule
/// abg_sweep applies to its axes).
void expect_keys(const util::Json& object,
                 std::initializer_list<std::string_view> allowed,
                 const std::string& where) {
  if (!object.is_object()) {
    bad(where, "expected an object");
  }
  for (const auto& [key, value] : object.members()) {
    bool known = false;
    for (const std::string_view candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::ostringstream msg;
      msg << "unknown key '" << key << "' (expected one of:";
      for (const std::string_view candidate : allowed) {
        msg << " " << candidate;
      }
      msg << ")";
      bad(where, msg.str());
    }
  }
}

std::int64_t read_int(const util::Json& parent, std::string_view key,
                      std::int64_t fallback, const std::string& where) {
  const util::Json* found = parent.find(key);
  if (found == nullptr) {
    return fallback;
  }
  if (!found->is_integer()) {
    bad(where, "'" + std::string(key) + "' must be an integer");
  }
  return found->as_integer();
}

double read_double(const util::Json& parent, std::string_view key,
                   double fallback, const std::string& where) {
  const util::Json* found = parent.find(key);
  if (found == nullptr) {
    return fallback;
  }
  if (!found->is_number() && !found->is_integer()) {
    bad(where, "'" + std::string(key) + "' must be a number");
  }
  return found->as_number();
}

std::string read_string(const util::Json& parent, std::string_view key,
                        const std::string& fallback,
                        const std::string& where) {
  const util::Json* found = parent.find(key);
  if (found == nullptr) {
    return fallback;
  }
  if (!found->is_string()) {
    bad(where, "'" + std::string(key) + "' must be a string");
  }
  return found->as_string();
}

Range read_range(const util::Json& parent, std::string_view key,
                 Range fallback, const std::string& where) {
  const util::Json* found = parent.find(key);
  if (found == nullptr) {
    return fallback;
  }
  return Range::from_json(*found, where + "." + std::string(key));
}

void check_range(const Range& range, std::int64_t min_lo,
                 const std::string& where) {
  if (range.lo > range.hi) {
    bad(where, "range [" + std::to_string(range.lo) + ", " +
                   std::to_string(range.hi) + "] has lo > hi");
  }
  if (range.lo < min_lo) {
    bad(where, "range lower bound " + std::to_string(range.lo) +
                   " is below the minimum " + std::to_string(min_lo));
  }
}

}  // namespace

std::int64_t Range::sample(util::Rng& rng) const {
  // A pinned range consumes no randomness, so scenarios with fully fixed
  // parameters are seed-independent by construction.
  return lo == hi ? lo : rng.uniform_int(lo, hi);
}

Range Range::from_json(const util::Json& value, const std::string& where) {
  if (value.is_integer()) {
    return Range::fixed(value.as_integer());
  }
  if (value.is_array() && value.size() == 2 && value.at(0).is_integer() &&
      value.at(1).is_integer()) {
    return Range{value.at(0).as_integer(), value.at(1).as_integer()};
  }
  bad(where, "expected an integer or a two-element [lo, hi] array");
}

util::Json Range::to_json() const {
  if (is_fixed()) {
    return util::Json::integer(lo);
  }
  return util::Json::array()
      .push(util::Json::integer(lo))
      .push(util::Json::integer(hi));
}

std::string to_string(GeneratorKind kind) {
  switch (kind) {
    case GeneratorKind::kMultiphase:
      return "multiphase";
    case GeneratorKind::kSublinear:
      return "sublinear";
    case GeneratorKind::kMapReduce:
      return "mapreduce";
    case GeneratorKind::kOscillator:
      return "oscillator";
    case GeneratorKind::kExplicit:
      return "explicit";
  }
  throw std::invalid_argument("unknown GeneratorKind");
}

GeneratorKind generator_kind_from_name(const std::string& name) {
  if (name == "multiphase") {
    return GeneratorKind::kMultiphase;
  }
  if (name == "sublinear") {
    return GeneratorKind::kSublinear;
  }
  if (name == "mapreduce") {
    return GeneratorKind::kMapReduce;
  }
  if (name == "oscillator") {
    return GeneratorKind::kOscillator;
  }
  if (name == "explicit") {
    return GeneratorKind::kExplicit;
  }
  throw std::invalid_argument(
      "unknown generator '" + name +
      "' (expected multiphase, sublinear, mapreduce, oscillator, explicit)");
}

std::string to_string(ReleaseSchedule schedule) {
  switch (schedule) {
    case ReleaseSchedule::kBatched:
      return "batched";
    case ReleaseSchedule::kStaggered:
      return "staggered";
    case ReleaseSchedule::kPoisson:
      return "poisson";
  }
  throw std::invalid_argument("unknown ReleaseSchedule");
}

ReleaseSchedule release_schedule_from_name(const std::string& name) {
  if (name == "batched") {
    return ReleaseSchedule::kBatched;
  }
  if (name == "staggered") {
    return ReleaseSchedule::kStaggered;
  }
  if (name == "poisson") {
    return ReleaseSchedule::kPoisson;
  }
  throw std::invalid_argument("unknown release schedule '" + name +
                              "' (expected batched, staggered, poisson)");
}

ScenarioSpec ScenarioSpec::from_json(const util::Json& doc) {
  expect_keys(doc,
              {"name", "description", "generator", "jobs", "machine",
               "release", "arrival", "cluster", "params"},
              "document");
  ScenarioSpec spec;
  spec.name = read_string(doc, "name", "", "document");
  spec.description = read_string(doc, "description", "", "document");
  spec.generator = generator_kind_from_name(
      read_string(doc, "generator", "", "document"));
  spec.jobs = static_cast<int>(read_int(doc, "jobs", 1, "document"));

  if (const util::Json* machine = doc.find("machine")) {
    expect_keys(*machine, {"processors", "quantum"}, "machine");
    spec.machine.processors =
        static_cast<int>(read_int(*machine, "processors", 0, "machine"));
    spec.machine.quantum = read_int(*machine, "quantum", 0, "machine");
  }
  if (const util::Json* release = doc.find("release")) {
    expect_keys(*release, {"schedule", "gap"}, "release");
    spec.release.schedule = release_schedule_from_name(
        read_string(*release, "schedule", "batched", "release"));
    spec.release.gap = read_double(*release, "gap", 0.0, "release");
  }
  if (const util::Json* arrival = doc.find("arrival")) {
    expect_keys(*arrival, {"kind", "jobs_total", "load"}, "arrival");
    spec.arrival.kind = open::arrival_kind_from_name(
        read_string(*arrival, "kind", "none", "arrival"));
    spec.arrival.jobs_total =
        read_int(*arrival, "jobs_total", 0, "arrival");
    spec.arrival.load = read_double(*arrival, "load", 0.0, "arrival");
  }
  if (const util::Json* cluster = doc.find("cluster")) {
    expect_keys(*cluster,
                {"machines", "router", "migration-period", "shapes"},
                "cluster");
    spec.cluster.machines =
        static_cast<int>(read_int(*cluster, "machines", 0, "cluster"));
    spec.cluster.router = read_string(*cluster, "router", "", "cluster");
    spec.cluster.migration_period =
        read_int(*cluster, "migration-period", 0, "cluster");
    if (const util::Json* shapes = cluster->find("shapes")) {
      if (!shapes->is_array()) {
        bad("cluster", "'shapes' must be an array");
      }
      for (std::size_t i = 0; i < shapes->size(); ++i) {
        const std::string where = "cluster.shapes[" + std::to_string(i) + "]";
        const util::Json& shape = shapes->at(i);
        expect_keys(shape, {"processors", "regions"}, where);
        sim::ClusterMachine parsed_shape;
        parsed_shape.processors =
            static_cast<int>(read_int(shape, "processors", 0, where));
        if (const util::Json* regions = shape.find("regions")) {
          if (!regions->is_array()) {
            bad(where, "'regions' must be an array");
          }
          for (std::size_t r = 0; r < regions->size(); ++r) {
            const std::string region_where =
                where + ".regions[" + std::to_string(r) + "]";
            const util::Json& region = regions->at(r);
            expect_keys(region, {"processors", "multiplier"}, region_where);
            sim::ClusterRegion parsed;
            parsed.processors = static_cast<int>(
                read_int(region, "processors", 0, region_where));
            parsed.cost_multiplier =
                read_double(region, "multiplier", 1.0, region_where);
            parsed_shape.regions.push_back(parsed);
          }
        }
        spec.cluster.shapes.push_back(std::move(parsed_shape));
      }
    }
  }

  const util::Json* params = doc.find("params");
  const util::Json empty = util::Json::object();
  if (params == nullptr) {
    params = &empty;
  }
  switch (spec.generator) {
    case GeneratorKind::kMultiphase: {
      expect_keys(*params, {"phases"}, "params");
      const util::Json* phases = params->find("phases");
      if (phases == nullptr || !phases->is_array()) {
        bad("params", "multiphase requires a 'phases' array");
      }
      for (std::size_t i = 0; i < phases->size(); ++i) {
        const std::string where = "params.phases[" + std::to_string(i) + "]";
        const util::Json& phase = phases->at(i);
        expect_keys(phase, {"width", "levels"}, where);
        PhaseSpec p;
        p.width = read_range(phase, "width", Range::fixed(1), where);
        p.levels = read_range(phase, "levels", Range::fixed(1), where);
        spec.phases.push_back(p);
      }
      break;
    }
    case GeneratorKind::kSublinear: {
      expect_keys(*params, {"classes"}, "params");
      const util::Json* classes = params->find("classes");
      if (classes == nullptr || !classes->is_array()) {
        bad("params", "sublinear requires a 'classes' array");
      }
      for (std::size_t i = 0; i < classes->size(); ++i) {
        const std::string where =
            "params.classes[" + std::to_string(i) + "]";
        const util::Json& klass = classes->at(i);
        expect_keys(klass, {"alpha", "work", "max_width", "weight"}, where);
        ClassSpec c;
        c.alpha = read_double(klass, "alpha", 0.5, where);
        c.work = read_range(klass, "work", Range::fixed(100000), where);
        c.max_width =
            read_range(klass, "max_width", Range::fixed(0), where);
        c.weight = read_double(klass, "weight", 1.0, where);
        spec.classes.push_back(c);
      }
      break;
    }
    case GeneratorKind::kMapReduce: {
      expect_keys(*params,
                  {"maps", "map_levels", "shuffle_levels", "reduces",
                   "reduce_levels"},
                  "params");
      spec.maps = read_range(*params, "maps", spec.maps, "params");
      spec.map_levels =
          read_range(*params, "map_levels", spec.map_levels, "params");
      spec.shuffle_levels = read_range(*params, "shuffle_levels",
                                       spec.shuffle_levels, "params");
      spec.reduces = read_range(*params, "reduces", spec.reduces, "params");
      spec.reduce_levels = read_range(*params, "reduce_levels",
                                      spec.reduce_levels, "params");
      break;
    }
    case GeneratorKind::kOscillator: {
      expect_keys(*params, {"low", "high", "half_period", "periods"},
                  "params");
      spec.osc_low = read_range(*params, "low", spec.osc_low, "params");
      spec.osc_high = read_range(*params, "high", spec.osc_high, "params");
      spec.half_period =
          read_range(*params, "half_period", spec.half_period, "params");
      spec.periods = read_range(*params, "periods", spec.periods, "params");
      break;
    }
    case GeneratorKind::kExplicit: {
      expect_keys(*params, {"jobs"}, "params");
      const util::Json* jobs = params->find("jobs");
      if (jobs == nullptr || !jobs->is_array()) {
        bad("params", "explicit requires a 'jobs' array");
      }
      for (std::size_t i = 0; i < jobs->size(); ++i) {
        const std::string where = "params.jobs[" + std::to_string(i) + "]";
        const util::Json& job = jobs->at(i);
        expect_keys(job, {"release", "phases"}, where);
        ExplicitJob e;
        e.release = read_int(job, "release", 0, where);
        const util::Json* phases = job.find("phases");
        if (phases == nullptr || !phases->is_array()) {
          bad(where, "requires a 'phases' array");
        }
        for (std::size_t p = 0; p < phases->size(); ++p) {
          const util::Json& pair = phases->at(p);
          if (!pair.is_array() || pair.size() != 2 ||
              !pair.at(0).is_integer() || !pair.at(1).is_integer()) {
            bad(where + ".phases[" + std::to_string(p) + "]",
                "expected a [width, levels] pair");
          }
          e.phases.push_back(
              ExplicitPhase{pair.at(0).as_integer(), pair.at(1).as_integer()});
        }
        spec.explicit_jobs.push_back(std::move(e));
      }
      break;
    }
  }
  spec.validate();
  return spec;
}

util::Json ScenarioSpec::to_json() const {
  util::Json doc = util::Json::object();
  doc.set("name", util::Json::string(name));
  if (!description.empty()) {
    doc.set("description", util::Json::string(description));
  }
  doc.set("generator", util::Json::string(to_string(generator)));
  if (generator != GeneratorKind::kExplicit) {
    doc.set("jobs", util::Json::integer(jobs));
  }
  if (machine.processors != 0 || machine.quantum != 0) {
    util::Json m = util::Json::object();
    if (machine.processors != 0) {
      m.set("processors", util::Json::integer(machine.processors));
    }
    if (machine.quantum != 0) {
      m.set("quantum", util::Json::integer(machine.quantum));
    }
    doc.set("machine", std::move(m));
  }
  if (release.schedule != ReleaseSchedule::kBatched) {
    doc.set("release",
            util::Json::object()
                .set("schedule", util::Json::string(to_string(release.schedule)))
                .set("gap", util::Json::number(release.gap)));
  }
  if (arrival.kind != open::ArrivalKind::kNone) {
    util::Json a = util::Json::object();
    a.set("kind", util::Json::string(open::to_string(arrival.kind)));
    if (arrival.jobs_total != 0) {
      a.set("jobs_total", util::Json::integer(arrival.jobs_total));
    }
    if (arrival.load != 0.0) {
      a.set("load", util::Json::number(arrival.load));
    }
    doc.set("arrival", std::move(a));
  }
  if (cluster.machines > 0) {
    util::Json c = util::Json::object();
    c.set("machines", util::Json::integer(cluster.machines));
    if (!cluster.router.empty()) {
      c.set("router", util::Json::string(cluster.router));
    }
    if (cluster.migration_period != 0) {
      c.set("migration-period", util::Json::integer(cluster.migration_period));
    }
    if (!cluster.shapes.empty()) {
      util::Json shapes = util::Json::array();
      for (const sim::ClusterMachine& cluster_machine : cluster.shapes) {
        util::Json shape = util::Json::object();
        shape.set("processors",
                  util::Json::integer(cluster_machine.processors));
        if (!cluster_machine.regions.empty()) {
          util::Json regions = util::Json::array();
          for (const sim::ClusterRegion& region : cluster_machine.regions) {
            regions.push(
                util::Json::object()
                    .set("processors", util::Json::integer(region.processors))
                    .set("multiplier",
                         util::Json::number(region.cost_multiplier)));
          }
          shape.set("regions", std::move(regions));
        }
        shapes.push(std::move(shape));
      }
      c.set("shapes", std::move(shapes));
    }
    doc.set("cluster", std::move(c));
  }

  util::Json params = util::Json::object();
  switch (generator) {
    case GeneratorKind::kMultiphase: {
      util::Json list = util::Json::array();
      for (const PhaseSpec& phase : phases) {
        list.push(util::Json::object()
                      .set("width", phase.width.to_json())
                      .set("levels", phase.levels.to_json()));
      }
      params.set("phases", std::move(list));
      break;
    }
    case GeneratorKind::kSublinear: {
      util::Json list = util::Json::array();
      for (const ClassSpec& klass : classes) {
        list.push(util::Json::object()
                      .set("alpha", util::Json::number(klass.alpha))
                      .set("work", klass.work.to_json())
                      .set("max_width", klass.max_width.to_json())
                      .set("weight", util::Json::number(klass.weight)));
      }
      params.set("classes", std::move(list));
      break;
    }
    case GeneratorKind::kMapReduce:
      params.set("maps", maps.to_json())
          .set("map_levels", map_levels.to_json())
          .set("shuffle_levels", shuffle_levels.to_json())
          .set("reduces", reduces.to_json())
          .set("reduce_levels", reduce_levels.to_json());
      break;
    case GeneratorKind::kOscillator:
      params.set("low", osc_low.to_json())
          .set("high", osc_high.to_json())
          .set("half_period", half_period.to_json())
          .set("periods", periods.to_json());
      break;
    case GeneratorKind::kExplicit: {
      util::Json list = util::Json::array();
      for (const ExplicitJob& job : explicit_jobs) {
        util::Json phase_list = util::Json::array();
        for (const ExplicitPhase& phase : job.phases) {
          phase_list.push(util::Json::array()
                              .push(util::Json::integer(phase.width))
                              .push(util::Json::integer(phase.levels)));
        }
        list.push(util::Json::object()
                      .set("release", util::Json::integer(job.release))
                      .set("phases", std::move(phase_list)));
      }
      params.set("jobs", std::move(list));
      break;
    }
  }
  doc.set("params", std::move(params));
  return doc;
}

ScenarioSpec ScenarioSpec::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("scenario: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return from_json(util::Json::parse(buffer.str()));
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void ScenarioSpec::save_file(const std::string& path) const {
  const util::Json doc = to_json();
  util::write_file_atomic(path, [&doc](std::ostream& out) {
    doc.write(out);
    out << "\n";
  });
}

void ScenarioSpec::validate() const {
  if (name.empty()) {
    bad("document", "'name' must be a non-empty string");
  }
  if (machine.processors < 0 || machine.quantum < 0) {
    bad("machine", "processors/quantum must be >= 0 (0 = unspecified)");
  }
  if (release.schedule != ReleaseSchedule::kBatched && release.gap < 1.0) {
    bad("release", "'gap' must be >= 1 for staggered/poisson releases");
  }
  if (arrival.kind == open::ArrivalKind::kTrace) {
    bad("arrival",
        "'trace' arrivals need a trace path; use the consumer's arrival "
        "axis (--arrival=trace --trace-path=FILE) instead");
  }
  if (arrival.jobs_total < 0) {
    bad("arrival", "'jobs_total' must be >= 0");
  }
  if (arrival.load < 0.0) {
    bad("arrival", "'load' must be >= 0");
  }
  if (cluster.machines < 0) {
    bad("cluster", "'machines' must be >= 0 (0 = single machine)");
  }
  if (cluster.migration_period < 0) {
    bad("cluster", "'migration-period' must be >= 0 (0 = disabled)");
  }
  if (cluster.machines == 0 &&
      (!cluster.router.empty() || cluster.migration_period != 0 ||
       !cluster.shapes.empty())) {
    bad("cluster", "'machines' must be >= 1 when the block is populated");
  }
  if (!cluster.shapes.empty() &&
      static_cast<int>(cluster.shapes.size()) != cluster.machines) {
    bad("cluster", "'shapes' must list exactly 'machines' entries (got " +
                       std::to_string(cluster.shapes.size()) + " for " +
                       std::to_string(cluster.machines) + " machines)");
  }
  for (std::size_t i = 0; i < cluster.shapes.size(); ++i) {
    const std::string where = "cluster.shapes[" + std::to_string(i) + "]";
    const sim::ClusterMachine& machine_shape = cluster.shapes[i];
    if (machine_shape.processors < 1) {
      bad(where, "'processors' must be >= 1");
    }
    int region_sum = 0;
    for (std::size_t r = 0; r < machine_shape.regions.size(); ++r) {
      const std::string region_where =
          where + ".regions[" + std::to_string(r) + "]";
      const sim::ClusterRegion& region = machine_shape.regions[r];
      if (region.processors < 1) {
        bad(region_where, "'processors' must be >= 1");
      }
      if (!(region.cost_multiplier > 0.0)) {
        bad(region_where, "'multiplier' must be > 0");
      }
      region_sum += region.processors;
    }
    if (!machine_shape.regions.empty() &&
        region_sum != machine_shape.processors) {
      bad(where, "region processors must sum to the machine's processors (" +
                     std::to_string(region_sum) + " != " +
                     std::to_string(machine_shape.processors) + ")");
    }
  }
  if (generator != GeneratorKind::kExplicit && jobs < 1) {
    bad("document", "'jobs' must be >= 1");
  }
  switch (generator) {
    case GeneratorKind::kMultiphase:
      if (phases.empty()) {
        bad("params", "multiphase requires at least one phase");
      }
      for (std::size_t i = 0; i < phases.size(); ++i) {
        const std::string where = "params.phases[" + std::to_string(i) + "]";
        check_range(phases[i].width, 1, where + ".width");
        check_range(phases[i].levels, 1, where + ".levels");
      }
      break;
    case GeneratorKind::kSublinear:
      if (classes.empty()) {
        bad("params", "sublinear requires at least one class");
      }
      for (std::size_t i = 0; i < classes.size(); ++i) {
        const std::string where =
            "params.classes[" + std::to_string(i) + "]";
        const ClassSpec& klass = classes[i];
        if (!(klass.alpha > 0.0) || klass.alpha > 1.0) {
          bad(where, "'alpha' must be in (0, 1]");
        }
        if (!(klass.weight > 0.0)) {
          bad(where, "'weight' must be > 0");
        }
        check_range(klass.work, 1, where + ".work");
        check_range(klass.max_width, 0, where + ".max_width");
      }
      break;
    case GeneratorKind::kMapReduce:
      check_range(maps, 1, "params.maps");
      check_range(map_levels, 1, "params.map_levels");
      check_range(shuffle_levels, 1, "params.shuffle_levels");
      check_range(reduces, 1, "params.reduces");
      check_range(reduce_levels, 1, "params.reduce_levels");
      break;
    case GeneratorKind::kOscillator:
      check_range(osc_low, 1, "params.low");
      check_range(osc_high, 0, "params.high");
      check_range(half_period, 0, "params.half_period");
      check_range(periods, 1, "params.periods");
      break;
    case GeneratorKind::kExplicit:
      if (explicit_jobs.empty()) {
        bad("params", "explicit requires at least one job");
      }
      for (std::size_t i = 0; i < explicit_jobs.size(); ++i) {
        const std::string where = "params.jobs[" + std::to_string(i) + "]";
        const ExplicitJob& job = explicit_jobs[i];
        if (job.release < 0) {
          bad(where, "'release' must be >= 0");
        }
        if (job.phases.empty()) {
          bad(where, "requires at least one phase");
        }
        for (std::size_t p = 0; p < job.phases.size(); ++p) {
          if (job.phases[p].width < 1 || job.phases[p].levels < 1) {
            bad(where + ".phases[" + std::to_string(p) + "]",
                "width and levels must be >= 1");
          }
        }
      }
      break;
  }
}

}  // namespace abg::scenario
