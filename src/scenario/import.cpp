#include "scenario/import.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dag/profile_job.hpp"
#include "scenario/generators.hpp"
#include "util/json.hpp"

namespace abg::scenario {

namespace {

[[noreturn]] void bad_line(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("trace line " + std::to_string(line_no) +
                              ": " + what);
}

}  // namespace

ScenarioSpec import_trace(std::istream& in, const std::string& default_name) {
  ScenarioSpec spec;
  spec.generator = GeneratorKind::kExplicit;
  spec.name = default_name;

  std::string line;
  std::size_t line_no = 0;
  bool saw_job = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    util::Json doc = util::Json::null();
    try {
      doc = util::Json::parse(line);
    } catch (const std::invalid_argument& e) {
      bad_line(line_no, std::string("not valid JSON (") + e.what() + ")");
    }
    if (!doc.is_object()) {
      bad_line(line_no, "expected a JSON object");
    }
    const util::Json* kind = doc.find("kind");
    if (kind != nullptr) {
      // Header line: machine + name metadata.  Must precede every job so
      // a truncated re-concatenation is caught, not silently accepted.
      if (saw_job) {
        bad_line(line_no, "header after the first job line");
      }
      if (!kind->is_string() || kind->as_string() != "abg-jobs-trace") {
        bad_line(line_no, "unknown trace kind (expected 'abg-jobs-trace')");
      }
      if (const util::Json* name = doc.find("name")) {
        if (!name->is_string() || name->as_string().empty()) {
          bad_line(line_no, "header 'name' must be a non-empty string");
        }
        spec.name = name->as_string();
      }
      if (const util::Json* processors = doc.find("processors")) {
        if (!processors->is_integer() || processors->as_integer() < 1) {
          bad_line(line_no, "header 'processors' must be an integer >= 1");
        }
        spec.machine.processors =
            static_cast<int>(processors->as_integer());
      }
      if (const util::Json* quantum = doc.find("quantum")) {
        if (!quantum->is_integer() || quantum->as_integer() < 1) {
          bad_line(line_no, "header 'quantum' must be an integer >= 1");
        }
        spec.machine.quantum = quantum->as_integer();
      }
      continue;
    }

    ExplicitJob job;
    if (const util::Json* release = doc.find("release")) {
      if (!release->is_integer() || release->as_integer() < 0) {
        bad_line(line_no, "'release' must be an integer >= 0");
      }
      job.release = release->as_integer();
    }
    const util::Json* phases = doc.find("phases");
    if (phases == nullptr || !phases->is_array() || phases->size() == 0) {
      bad_line(line_no, "requires a non-empty 'phases' array");
    }
    for (const util::Json& pair : phases->items()) {
      if (!pair.is_array() || pair.size() != 2 || !pair.at(0).is_integer() ||
          !pair.at(1).is_integer()) {
        bad_line(line_no, "each phase must be a [width, levels] pair");
      }
      const std::int64_t width = pair.at(0).as_integer();
      const std::int64_t levels = pair.at(1).as_integer();
      if (width < 1 || levels < 1) {
        bad_line(line_no, "phase width and levels must be >= 1");
      }
      // Normalization: merge adjacent phases of equal width so imports of
      // unencoded (one level per phase) traces stay compact.
      if (!job.phases.empty() && job.phases.back().width == width) {
        job.phases.back().levels += levels;
      } else {
        job.phases.push_back(ExplicitPhase{width, levels});
      }
    }
    spec.explicit_jobs.push_back(std::move(job));
    saw_job = true;
  }
  if (spec.explicit_jobs.empty()) {
    throw std::invalid_argument("trace holds no job lines");
  }
  // Normalization: submission order is release order (ties keep file
  // order), matching what a release-sorted engine would see anyway.
  std::stable_sort(spec.explicit_jobs.begin(), spec.explicit_jobs.end(),
                   [](const ExplicitJob& a, const ExplicitJob& b) {
                     return a.release < b.release;
                   });
  spec.validate();
  return spec;
}

ScenarioSpec import_trace_file(const std::string& path,
                               const std::string& default_name) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("scenario: cannot open " + path);
  }
  try {
    return import_trace(in, default_name);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void export_trace(std::ostream& out, const ScenarioSpec& spec,
                  util::Rng& rng, int processors, dag::Steps quantum) {
  util::Json header = util::Json::object();
  header.set("kind", util::Json::string("abg-jobs-trace"));
  header.set("name", util::Json::string(spec.name));
  header.set("processors", util::Json::integer(processors));
  header.set("quantum", util::Json::integer(quantum));
  out << header.dump() << "\n";

  const std::vector<sim::JobSubmission> subs =
      generate_jobs(spec, rng, processors, quantum);
  for (const sim::JobSubmission& sub : subs) {
    const auto* job = dynamic_cast<const dag::ProfileJob*>(sub.job.get());
    if (job == nullptr) {
      throw std::logic_error(
          "scenario: export_trace expects ProfileJob workloads");
    }
    util::Json phases = util::Json::array();
    const std::vector<dag::TaskCount>& widths = job->widths();
    for (std::size_t i = 0; i < widths.size();) {
      std::size_t run = i + 1;
      while (run < widths.size() && widths[run] == widths[i]) {
        ++run;
      }
      phases.push(util::Json::array()
                      .push(util::Json::integer(widths[i]))
                      .push(util::Json::integer(
                          static_cast<std::int64_t>(run - i))));
      i = run;
    }
    util::Json record = util::Json::object();
    record.set("release", util::Json::integer(sub.release_step));
    record.set("phases", std::move(phases));
    out << record.dump() << "\n";
  }
}

}  // namespace abg::scenario
